//! Compiler error type.

use std::error::Error;
use std::fmt;

use datamaestro::ConfigError;

/// Errors raised while lowering a workload onto the evaluation system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// An operand did not fit its assigned bank-group region.
    Placement {
        /// What failed.
        reason: String,
    },
    /// The workload shape cannot be mapped (e.g. an output plane with no
    /// valid pixel tiling).
    Unsupported {
        /// Why the mapping failed.
        reason: String,
    },
    /// A generated streamer configuration was rejected downstream.
    Config(ConfigError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Placement { reason } => write!(f, "placement failed: {reason}"),
            CompileError::Unsupported { reason } => write!(f, "unsupported workload: {reason}"),
            CompileError::Config(e) => write!(f, "configuration rejected: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for CompileError {
    fn from(e: ConfigError) -> Self {
        CompileError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CompileError::Placement {
            reason: "too big".into(),
        };
        assert_eq!(e.to_string(), "placement failed: too big");
        assert!(e.source().is_none());
        let e = CompileError::from(ConfigError::ZeroBound { what: "bounds" });
        assert!(e.source().is_some());
    }
}
