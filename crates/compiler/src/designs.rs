//! Design-time configurations of the evaluation system's five DataMaestros
//! (Fig. 6 of the paper).
//!
//! All streamers expose power-of-two spatial bounds (`[2,2,2]` and
//! `[2;5]`): any 8- or 32-channel affine fan-out — contiguous tiles,
//! strided pixels, split `ox/oy` pixel tiles — is then programmable purely
//! through the runtime spatial strides, which is what makes one design
//! serve GeMM, transposed GeMM and convolutions alike.

use datamaestro::{ConfigError, DesignConfig, ExtensionKind, StreamerMode};

use crate::features::FeatureSet;

/// Buffer depths used when instantiating streamers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferDepths {
    /// Per-channel data FIFO depth of read streamers (`D_DBf`).
    pub data: usize,
    /// Per-channel data FIFO depth of write streamers. Writers only buffer
    /// the drain of one result burst, so they are built shallower.
    pub write_data: usize,
    /// Address buffer depth (`D_ABf`).
    pub addr: usize,
}

impl Default for BufferDepths {
    /// The evaluation system's defaults: depth-8 read FIFOs, depth-2 write
    /// FIFOs.
    fn default() -> Self {
        BufferDepths {
            data: 8,
            write_data: 2,
            addr: 8,
        }
    }
}

/// DataMaestro A: the activation reader. 8 channels, 6-D temporal AGU
/// (enough for implicit im2col), Transposer extension instantiated (bypassed
/// at runtime except for transposed GeMM).
pub fn design_a(features: &FeatureSet, depths: BufferDepths) -> Result<DesignConfig, ConfigError> {
    let mut b = DesignConfig::builder("A", StreamerMode::Read)
        .spatial_bounds([2, 2, 2])
        .temporal_dims(6)
        .data_buffer_depth(depths.data)
        .addr_buffer_depth(depths.addr)
        .fine_grained_prefetch(features.fine_grained_prefetch);
    if features.transposer {
        b = b.extension(ExtensionKind::Transposer {
            rows: 8,
            cols: 8,
            elem_bytes: 1,
        });
    }
    b.build()
}

/// DataMaestro B: the weight reader. 8 channels, 6-D temporal AGU.
pub fn design_b(features: &FeatureSet, depths: BufferDepths) -> Result<DesignConfig, ConfigError> {
    DesignConfig::builder("B", StreamerMode::Read)
        .spatial_bounds([2, 2, 2])
        .temporal_dims(6)
        .data_buffer_depth(depths.data)
        .addr_buffer_depth(depths.addr)
        .fine_grained_prefetch(features.fine_grained_prefetch)
        .build()
}

/// DataMaestro C: the bias reader. With the Broadcaster feature it needs
/// only 4 channels (one bias row, duplicated 8× on the fly); without it, a
/// plain 32-channel reader fetching fully materialized bias tiles.
pub fn design_c(features: &FeatureSet, depths: BufferDepths) -> Result<DesignConfig, ConfigError> {
    if features.broadcaster {
        DesignConfig::builder("C", StreamerMode::Read)
            .spatial_bounds([2, 2])
            .temporal_dims(6)
            .data_buffer_depth(depths.data)
            .addr_buffer_depth(depths.addr)
            .fine_grained_prefetch(features.fine_grained_prefetch)
            .extension(ExtensionKind::Broadcaster { factor: 8 })
            .build()
    } else {
        DesignConfig::builder("C", StreamerMode::Read)
            .spatial_bounds([2, 2, 2, 2, 2])
            .temporal_dims(6)
            .data_buffer_depth(depths.data)
            .addr_buffer_depth(depths.addr)
            .fine_grained_prefetch(features.fine_grained_prefetch)
            .build()
    }
}

/// DataMaestro D: the raw int32 result writer (32 channels).
pub fn design_d(features: &FeatureSet, depths: BufferDepths) -> Result<DesignConfig, ConfigError> {
    DesignConfig::builder("D", StreamerMode::Write)
        .spatial_bounds([2, 2, 2, 2, 2])
        .temporal_dims(6)
        .data_buffer_depth(depths.write_data)
        .addr_buffer_depth(depths.addr)
        .fine_grained_prefetch(features.fine_grained_prefetch)
        .build()
}

/// DataMaestro E: the quantized int8 result writer (8 channels).
pub fn design_e(features: &FeatureSet, depths: BufferDepths) -> Result<DesignConfig, ConfigError> {
    DesignConfig::builder("E", StreamerMode::Write)
        .spatial_bounds([2, 2, 2])
        .temporal_dims(6)
        .data_buffer_depth(depths.write_data)
        .addr_buffer_depth(depths.addr)
        .fine_grained_prefetch(features.fine_grained_prefetch)
        .build()
}

/// Spatial strides for three binary digits covering an `sx × sy` pixel
/// tile: the first `log2(sx)` digits step by `step_x` powers, the rest by
/// `step_y` powers.
#[must_use]
pub fn pixel_spatial_strides(sx: usize, step_x: i64, step_y: i64) -> Vec<i64> {
    debug_assert!(sx.is_power_of_two() && sx <= 8);
    let mut strides = Vec::with_capacity(3);
    let mut factor = 1usize;
    for _ in 0..3 {
        if factor < sx {
            strides.push(step_x * factor as i64);
        } else {
            strides.push(step_y * (factor / sx) as i64);
        }
        factor *= 2;
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamaestro::agu::SpatialAgu;

    #[test]
    fn channel_counts_match_port_widths() {
        let f = FeatureSet::full();
        let d = BufferDepths::default();
        assert_eq!(design_a(&f, d).unwrap().num_channels(), 8);
        assert_eq!(design_b(&f, d).unwrap().num_channels(), 8);
        assert_eq!(design_c(&f, d).unwrap().num_channels(), 4);
        assert_eq!(design_d(&f, d).unwrap().num_channels(), 32);
        assert_eq!(design_e(&f, d).unwrap().num_channels(), 8);
    }

    #[test]
    fn broadcaster_off_widens_c() {
        let f = FeatureSet::baseline();
        let c = design_c(&f, BufferDepths::default()).unwrap();
        assert_eq!(c.num_channels(), 32);
        assert!(c.extensions().is_empty());
    }

    #[test]
    fn transposer_only_with_feature() {
        let d = BufferDepths::default();
        assert_eq!(
            design_a(&FeatureSet::full(), d).unwrap().extensions().len(),
            1
        );
        assert!(design_a(&FeatureSet::baseline(), d)
            .unwrap()
            .extensions()
            .is_empty());
    }

    #[test]
    fn pixel_strides_cover_all_factorizations() {
        // sx = 8: pure x walk.
        assert_eq!(pixel_spatial_strides(8, 10, 999), vec![10, 20, 40]);
        // sx = 4, sy = 2.
        assert_eq!(pixel_spatial_strides(4, 10, 100), vec![10, 20, 100]);
        // sx = 2, sy = 4.
        assert_eq!(pixel_spatial_strides(2, 10, 100), vec![10, 100, 200]);
        // sx = 1: pure y walk.
        assert_eq!(pixel_spatial_strides(1, 999, 100), vec![100, 200, 400]);
    }

    #[test]
    fn pixel_strides_enumerate_the_tile() {
        // Channel c must land at pixel (c % sx, c / sx).
        for sx in [1usize, 2, 4, 8] {
            let sy = 8 / sx;
            let strides = pixel_spatial_strides(sx, 1, 1000);
            let agu = SpatialAgu::new(&[2, 2, 2], &strides);
            for c in 0..8 {
                let expected = (c % sx) as i64 + 1000 * (c / sx) as i64;
                assert_eq!(agu.offsets()[c], expected, "sx={sx} sy={sy} channel {c}");
            }
        }
    }
}
