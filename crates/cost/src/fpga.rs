//! FPGA resource estimator (Fig. 8).
//!
//! On the VPK180 prototype, the paper reports 265 k LUTs / 59 k registers
//! for the whole system, with the GeMM accelerator at 124 k LUTs (46.79 %)
//! and the five DataMaestros at 14 k LUTs (5.28 %) and 4.4 k registers.
//! This estimator maps the same structural parameters the area model uses
//! onto LUT/FF counts with generic FPGA mapping coefficients:
//!
//! * one int8 MAC maps to ~240 LUTs (no DSP inference, as register-rich
//!   int8 arrays are usually LUT-mapped for density);
//! * streamer FIFOs map to LUTRAM (counted as LUTs, ~1 LUT per 2 stored
//!   bits), which is why the DataMaestros' *register* count stays small;
//! * AGU counters and pipeline state map 1:1 onto flip-flops.

use datamaestro::{DesignConfig, StreamerMode};
use serde::{Deserialize, Serialize};

use crate::spec::EvaluationSystemSpec;

/// LUT/FF counts of one component.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaResources {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flop registers.
    pub regs: u64,
}

impl FpgaResources {
    fn add(&mut self, other: FpgaResources) {
        self.luts += other.luts;
        self.regs += other.regs;
    }
}

/// The Fig. 8 resource table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaReport {
    /// GeMM accelerator.
    pub gemm: FpgaResources,
    /// Quantization accelerator.
    pub quant: FpgaResources,
    /// All five DataMaestros combined.
    pub datamaestros: FpgaResources,
    /// Crossbar + memory controllers.
    pub interconnect: FpgaResources,
    /// RISC-V host and platform glue.
    pub host: FpgaResources,
}

impl FpgaReport {
    /// Whole-system totals.
    #[must_use]
    pub fn total(&self) -> FpgaResources {
        let mut t = FpgaResources::default();
        for part in [
            self.gemm,
            self.quant,
            self.datamaestros,
            self.interconnect,
            self.host,
        ] {
            t.add(part);
        }
        t
    }

    /// LUT share of a component in percent.
    #[must_use]
    pub fn lut_share_pct(&self, part: FpgaResources) -> f64 {
        100.0 * part.luts as f64 / self.total().luts as f64
    }

    /// Register share of a component in percent.
    #[must_use]
    pub fn reg_share_pct(&self, part: FpgaResources) -> f64 {
        100.0 * part.regs as f64 / self.total().regs as f64
    }
}

fn streamer_resources(design: &DesignConfig, word_bits: usize) -> FpgaResources {
    let ch = design.num_channels() as u64;
    let dims = design.temporal_dims() as u64;
    // FIFO storage → LUTRAM (2 bits per LUT).
    let fifo_bits = ch * design.data_buffer_depth() as u64 * word_bits as u64;
    let lutram = fifo_bits / 2;
    // Per-channel request/gather logic and per-dimension AGU adders.
    let logic_luts = ch * 110 + dims * 70 + design.extensions().len() as u64 * 220;
    // Registers: AGU counters (2×32 b per dim), per-channel handshake and
    // credit state; FIFO contents live in LUTRAM, not FFs.
    let regs = dims * 64
        + ch * match design.mode() {
            StreamerMode::Read => 24,
            StreamerMode::Write => 12,
        };
    FpgaResources {
        luts: lutram + logic_luts,
        regs,
    }
}

/// Estimates the Fig. 8 table for a system build.
#[must_use]
pub fn fpga_report(spec: &EvaluationSystemSpec) -> FpgaReport {
    let word_bits = spec.mem.bank_width_bytes() * 8;
    let pes = spec.array.num_pes() as u64;
    let gemm = FpgaResources {
        luts: pes * 242,
        // Accumulator tile + operand pipeline registers.
        regs: (spec.array.m_unroll * spec.array.n_unroll * 32) as u64
            + (spec.array.a_tile_bytes() + spec.array.b_tile_bytes()) as u64 * 8
            + pes * 8,
    };
    let quant = FpgaResources {
        luts: (spec.array.m_unroll * spec.array.n_unroll) as u64 * 180,
        regs: (spec.array.m_unroll * spec.array.n_unroll) as u64 * 40,
    };
    let mut datamaestros = FpgaResources::default();
    for design in &spec.streamers {
        datamaestros.add(streamer_resources(design, word_bits));
    }
    let crosspoints = (spec.total_channels() * spec.mem.num_banks()) as u64;
    let interconnect = FpgaResources {
        luts: crosspoints * 14 + spec.mem.num_banks() as u64 * 300,
        regs: spec.mem.num_banks() as u64 * 180,
    };
    let host = FpgaResources {
        luts: 74_000,
        regs: 26_000,
    };
    FpgaReport {
        gemm,
        quant,
        datamaestros,
        interconnect,
        host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FpgaReport {
        fpga_report(&EvaluationSystemSpec::paper())
    }

    #[test]
    fn totals_in_paper_regime() {
        // Paper: 265 k LUTs, 59 k regs total.
        let t = report().total();
        assert!((180_000..380_000).contains(&t.luts), "{} LUTs", t.luts);
        assert!((35_000..90_000).contains(&t.regs), "{} regs", t.regs);
    }

    #[test]
    fn gemm_dominates_luts() {
        // Paper: GeMM = 46.79 % of LUTs.
        let r = report();
        let share = r.lut_share_pct(r.gemm);
        assert!((35.0..60.0).contains(&share), "GeMM LUT share {share}%");
    }

    #[test]
    fn datamaestros_are_cheap() {
        // Paper: 14 k LUTs (5.28 %), 4.4 k regs (7.46 %).
        let r = report();
        let lut_share = r.lut_share_pct(r.datamaestros);
        let reg_share = r.reg_share_pct(r.datamaestros);
        assert!(
            (2.0..12.0).contains(&lut_share),
            "DM LUT share {lut_share}%"
        );
        assert!(
            (2.0..15.0).contains(&reg_share),
            "DM reg share {reg_share}%"
        );
    }

    #[test]
    fn writer_streamers_use_fewer_regs_per_channel() {
        let spec = EvaluationSystemSpec::paper();
        let word_bits = 64;
        let a = streamer_resources(&spec.streamers[0], word_bits); // 8-ch reader
        let e = streamer_resources(&spec.streamers[4], word_bits); // 8-ch writer
        assert!(a.regs > e.regs);
    }
}
