//! Activity-based power model (Fig. 9c).
//!
//! Power = Σ (event count × per-event energy) / runtime + static shares.
//! Event counts come straight from the cycle simulator's `RunReport`, so
//! the breakdown reflects the actual traffic of the measured workload
//! (GeMM-64 at 1 GHz in the paper's Fig. 9c).

use serde::{Deserialize, Serialize};

/// Per-event energies in picojoules, representative of 22 nm at 0.8 V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One 64-bit SRAM read.
    pub sram_read_pj: f64,
    /// One 64-bit SRAM write.
    pub sram_write_pj: f64,
    /// One int8 MAC.
    pub mac_pj: f64,
    /// One rescale (quantization) operation.
    pub rescale_pj: f64,
    /// Moving one 64-bit word through a FIFO (push + pop).
    pub fifo_word_pj: f64,
    /// One temporal-address generation step.
    pub agu_step_pj: f64,
    /// One word through the crossbar.
    pub xbar_word_pj: f64,
    /// Clock power of the streamer FIFO flops in milliwatts (the five
    /// DataMaestros hold ~15k flip-flops of FIFO storage that toggle their
    /// clock pins every cycle regardless of traffic; at 1 GHz this is a
    /// large, activity-independent share of the streamers' power — and why
    /// the paper's Fig. 9c attributes ~15 % of system power to them).
    pub streamer_clock_mw: f64,
    /// Host static + clock power in milliwatts (the Snitch core spins on a
    /// WFI loop while the accelerator runs).
    pub host_static_mw: f64,
    /// Accelerator-system clock-tree and leakage power in milliwatts.
    pub system_static_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            sram_read_pj: 5.2,
            sram_write_pj: 6.6,
            mac_pj: 0.19,
            rescale_pj: 0.5,
            fifo_word_pj: 0.9,
            agu_step_pj: 1.1,
            xbar_word_pj: 1.4,
            streamer_clock_mw: 32.0,
            host_static_mw: 45.0,
            system_static_mw: 15.0,
        }
    }
}

/// Event counts of one measured run (taken from the simulator).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyEvents {
    /// Granted word reads.
    pub sram_reads: u64,
    /// Granted word writes.
    pub sram_writes: u64,
    /// int8 MACs executed.
    pub macs: u64,
    /// Rescale operations executed.
    pub rescales: u64,
    /// Words moved through streamer FIFOs.
    pub fifo_words: u64,
    /// Temporal addresses generated.
    pub agu_steps: u64,
    /// Cycles of the run.
    pub cycles: u64,
}

/// Power breakdown in milliwatts (Fig. 9c), at the given clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// GeMM accelerator.
    pub gemm_mw: f64,
    /// Quantization accelerator.
    pub quant_mw: f64,
    /// The five DataMaestros (FIFO traffic + AGUs).
    pub datamaestros_mw: f64,
    /// Scratchpad + crossbar.
    pub memory_mw: f64,
    /// RISC-V host.
    pub host_mw: f64,
    /// System static/clock share.
    pub static_mw: f64,
}

impl PowerBreakdown {
    /// Total power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.gemm_mw
            + self.quant_mw
            + self.datamaestros_mw
            + self.memory_mw
            + self.host_mw
            + self.static_mw
    }

    /// A component's share in percent.
    #[must_use]
    pub fn share_pct(&self, component_mw: f64) -> f64 {
        100.0 * component_mw / self.total_mw()
    }

    /// System energy efficiency in TOPS/W for the measured run.
    #[must_use]
    pub fn tops_per_watt(&self, macs: u64, cycles: u64, frequency_hz: f64) -> f64 {
        let ops = 2.0 * macs as f64;
        let seconds = cycles as f64 / frequency_hz;
        let watts = self.total_mw() / 1e3;
        ops / seconds / watts / 1e12
    }
}

/// Evaluates the power breakdown for a run at `frequency_hz`.
#[must_use]
pub fn power_breakdown(
    events: &EnergyEvents,
    model: &EnergyModel,
    frequency_hz: f64,
) -> PowerBreakdown {
    let seconds = events.cycles.max(1) as f64 / frequency_hz;
    let to_mw = |pj: f64| pj * 1e-12 / seconds * 1e3;
    PowerBreakdown {
        gemm_mw: to_mw(events.macs as f64 * model.mac_pj),
        quant_mw: to_mw(events.rescales as f64 * model.rescale_pj),
        datamaestros_mw: to_mw(
            events.fifo_words as f64 * model.fifo_word_pj
                + events.agu_steps as f64 * model.agu_step_pj,
        ) + model.streamer_clock_mw,
        memory_mw: to_mw(
            events.sram_reads as f64 * model.sram_read_pj
                + events.sram_writes as f64 * model.sram_write_pj
                + (events.sram_reads + events.sram_writes) as f64 * model.xbar_word_pj,
        ),
        host_mw: model.host_static_mw,
        static_mw: model.system_static_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Events of an ideal GeMM-64 run: 512 steps at 100 % utilization.
    fn gemm64_events() -> EnergyEvents {
        let steps = 512u64; // (64/8)^3
        let tiles = 64u64; // (64/8)^2
        EnergyEvents {
            // A + B reads every step (8 words each), C 4 words per tile,
            // E 8 words per tile.
            sram_reads: steps * 16 + tiles * 4,
            sram_writes: tiles * 8,
            macs: steps * 512,
            rescales: tiles * 64,
            // Every word passes one FIFO on its way in/out.
            fifo_words: steps * 16 + tiles * 4 + tiles * 8,
            agu_steps: steps * 2 + tiles * 2,
            cycles: steps,
        }
    }

    #[test]
    fn total_power_in_paper_regime() {
        // Paper: 329.4 mW for GeMM-64 at 1 GHz.
        let p = power_breakdown(&gemm64_events(), &EnergyModel::default(), 1e9);
        let total = p.total_mw();
        assert!((200.0..500.0).contains(&total), "total {total} mW");
    }

    #[test]
    fn datamaestro_power_share_matches_shape() {
        // Paper: the five DataMaestros consume 15.06 % of total power.
        let p = power_breakdown(&gemm64_events(), &EnergyModel::default(), 1e9);
        let share = p.share_pct(p.datamaestros_mw);
        assert!((5.0..25.0).contains(&share), "DM power share {share}%");
    }

    #[test]
    fn efficiency_in_paper_regime() {
        // Paper: 2.57 TOPS/W system-level for GeMM-64.
        let e = gemm64_events();
        let p = power_breakdown(&e, &EnergyModel::default(), 1e9);
        let tops_w = p.tops_per_watt(e.macs, e.cycles, 1e9);
        assert!((1.5..4.5).contains(&tops_w), "{tops_w} TOPS/W");
    }

    #[test]
    fn power_scales_with_activity() {
        let model = EnergyModel::default();
        let mut busy = gemm64_events();
        let idle = EnergyEvents {
            cycles: 512,
            ..EnergyEvents::default()
        };
        busy.cycles = 512;
        let p_busy = power_breakdown(&busy, &model, 1e9);
        let p_idle = power_breakdown(&idle, &model, 1e9);
        assert!(p_busy.total_mw() > p_idle.total_mw());
        // Static shares are frequency/activity independent.
        assert_eq!(p_idle.gemm_mw, 0.0);
        assert_eq!(p_idle.host_mw, model.host_static_mw);
        assert_eq!(p_idle.datamaestros_mw, model.streamer_clock_mw);
    }

    #[test]
    fn shares_sum_to_hundred() {
        let p = power_breakdown(&gemm64_events(), &EnergyModel::default(), 1e9);
        let sum = p.share_pct(p.gemm_mw)
            + p.share_pct(p.quant_mw)
            + p.share_pct(p.datamaestros_mw)
            + p.share_pct(p.memory_mw)
            + p.share_pct(p.host_mw)
            + p.share_pct(p.static_mw);
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
