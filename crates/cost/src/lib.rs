//! Analytical cost models for the DataMaestro evaluation system.
//!
//! The paper reports synthesis (GF22FDX, 1 GHz, 0.8 V) and FPGA (VPK180)
//! results. Without a PDK or synthesis flow, this crate substitutes
//! *structural* models:
//!
//! * [`area`] — every component's area is computed from its design
//!   parameters (FIFO bits, counter widths, MAC count, SRAM bits) times
//!   per-structure unit costs representative of a 22 nm node. The
//!   *proportions* between components — the content of Figs. 9(a) and 9(b)
//!   — therefore derive from the same design-time parameters the simulator
//!   uses, not from the paper's results.
//! * [`energy`] — per-event energies (SRAM access, MAC, FIFO transfer, AGU
//!   step) multiplied by event counts measured by the cycle simulator give
//!   the power breakdown of Fig. 9(c).
//! * [`fpga`] — LUT/FF estimates per component for the Fig. 8 resource
//!   table (FIFO storage maps to LUTRAM on the FPGA, so it counts toward
//!   LUTs, not registers).
//!
//! The absolute scale of the unit costs is chosen to land in the same
//! regime as the paper's totals (0.61 mm², 329.4 mW); every relative number
//! is produced by the model, not copied.

pub mod area;
pub mod energy;
pub mod fpga;
pub mod spec;

pub use area::{AreaBreakdown, DataMaestroArea, UnitAreas};
pub use energy::{EnergyEvents, EnergyModel, PowerBreakdown};
pub use fpga::{FpgaReport, FpgaResources};
pub use spec::EvaluationSystemSpec;
