//! Structural specification of the evaluation system for costing.

use datamaestro::DesignConfig;
use dm_accel::GemmArrayConfig;
use dm_compiler::{design_a, design_b, design_c, design_d, design_e, BufferDepths, FeatureSet};
use dm_mem::MemConfig;

/// The hardware build being costed: five DataMaestros, the GeMM and
/// quantization accelerators, and the on-chip scratchpad.
///
/// Note the scratchpad here is the *silicon* scratchpad (128 KiB, as a
/// taped-out accelerator would carry); the simulator's default memory is
/// deliberately oversized so whole DNN layers fit without modelling a DRAM
/// back side — capacity does not affect utilization, but it very much
/// affects area, so the cost model uses the silicon-scale geometry.
#[derive(Debug, Clone)]
pub struct EvaluationSystemSpec {
    /// The five streamers: A, B, C (readers), D, E (writers).
    pub streamers: Vec<DesignConfig>,
    /// GeMM array unrolling.
    pub array: GemmArrayConfig,
    /// Silicon scratchpad geometry.
    pub mem: MemConfig,
}

impl EvaluationSystemSpec {
    /// The paper's evaluation system (Fig. 6): fully featured streamers,
    /// 8×8×8 array, 32-bank 128 KiB scratchpad.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in parameters.
    #[must_use]
    pub fn paper() -> Self {
        let features = FeatureSet::full();
        let depths = BufferDepths::default();
        let streamers = vec![
            design_a(&features, depths).expect("valid design"),
            design_b(&features, depths).expect("valid design"),
            design_c(&features, depths).expect("valid design"),
            design_d(&features, depths).expect("valid design"),
            design_e(&features, depths).expect("valid design"),
        ];
        EvaluationSystemSpec {
            streamers,
            array: GemmArrayConfig::paper(),
            mem: MemConfig::new(32, 8, 512).expect("valid geometry"),
        }
    }

    /// Total streamer channels.
    #[must_use]
    pub fn total_channels(&self) -> usize {
        self.streamers.iter().map(DesignConfig::num_channels).sum()
    }
}

impl Default for EvaluationSystemSpec {
    fn default() -> Self {
        EvaluationSystemSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_structure() {
        let spec = EvaluationSystemSpec::paper();
        assert_eq!(spec.streamers.len(), 5);
        assert_eq!(spec.array.num_pes(), 512);
        assert_eq!(spec.mem.capacity_bytes(), 128 * 1024);
        // A(8) + B(8) + C(4) + D(32) + E(8).
        assert_eq!(spec.total_channels(), 60);
    }
}
