//! Structural area model (Figs. 9a and 9b).

use datamaestro::{DesignConfig, ExtensionKind, StreamerMode};
use serde::{Deserialize, Serialize};

use crate::spec::EvaluationSystemSpec;

/// Per-structure unit areas in µm², representative of a 22 nm FD-SOI node.
///
/// These are generic library-scale numbers (a scan flip-flop with clocking
/// overhead ≈ 2–3 µm², a dense SRAM bit with periphery ≈ 0.15–0.25 µm², an
/// int8 MAC with its accumulator share ≈ a few hundred µm²). All breakdown
/// *shares* are derived from structure; only the overall regime depends on
/// these constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitAreas {
    /// One flip-flop bit (FIFO storage, counters, pipeline registers).
    pub ff_bit: f64,
    /// One SRAM bit including periphery share.
    pub sram_bit: f64,
    /// One int8×int8 + int32 accumulate MAC.
    pub mac8: f64,
    /// One adder bit (carry-propagate).
    pub adder_bit: f64,
    /// One 2:1 mux bit.
    pub mux_bit: f64,
    /// One per-channel rescale unit (32×32 multiply, shift, saturate).
    pub rescale_unit: f64,
    /// Small control FSM (per MIC).
    pub control_fsm: f64,
    /// The RISC-V host (Snitch core, instruction cache, peripherals) as a
    /// fixed hard block.
    pub host_block: f64,
    /// Crossbar cost per requester×bank crosspoint (wiring + arbitration
    /// share), per data bit.
    pub xbar_crosspoint_bit: f64,
}

impl Default for UnitAreas {
    fn default() -> Self {
        UnitAreas {
            ff_bit: 2.4,
            sram_bit: 0.17,
            mac8: 330.0,
            adder_bit: 1.2,
            mux_bit: 0.55,
            rescale_unit: 420.0,
            control_fsm: 20.0,
            host_block: 155_000.0,
            xbar_crosspoint_bit: 0.012,
        }
    }
}

/// Address width assumed for AGU counters and datapaths.
const ADDR_BITS: usize = 32;

/// Area composition of one DataMaestro instance (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataMaestroArea {
    /// Data FIFO storage.
    pub fifos: f64,
    /// Address generation unit (temporal + spatial).
    pub agu: f64,
    /// Memory interface controllers (all channels).
    pub mics: f64,
    /// Datapath extensions (Transposer/Broadcaster).
    pub extensions: f64,
    /// Address remapper (mode-select mux over permuted bits).
    pub remapper: f64,
}

impl DataMaestroArea {
    /// Total instance area.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.fifos + self.agu + self.mics + self.extensions + self.remapper
    }
}

/// Computes one DataMaestro's area from its design parameters.
#[must_use]
pub fn datamaestro_area(
    design: &DesignConfig,
    unit: &UnitAreas,
    word_bits: usize,
) -> DataMaestroArea {
    let channels = design.num_channels() as f64;
    let fifo_bits = channels * design.data_buffer_depth() as f64 * word_bits as f64;
    // Address buffers are part of the FIFO storage class.
    let addr_buffer_bits = channels * design.addr_buffer_depth() as f64 * ADDR_BITS as f64 / 4.0;
    let fifos = (fifo_bits + addr_buffer_bits) * unit.ff_bit;

    // Temporal AGU: per dimension a bound counter + a stride counter (two
    // ADDR_BITS registers) plus an incrementer, then an offset-sum adder
    // tree; spatial AGU: one adder per channel.
    let per_dim = 2.0 * ADDR_BITS as f64 * unit.ff_bit + ADDR_BITS as f64 * unit.adder_bit;
    let sum_tree = (design.temporal_dims() as f64) * ADDR_BITS as f64 * unit.adder_bit;
    let spatial = channels * ADDR_BITS as f64 * unit.adder_bit;
    let agu = design.temporal_dims() as f64 * per_dim + sum_tree + spatial;

    // MIC: ORM credit counter + RSC handshake FSM per channel. Writers
    // carry a slightly simpler controller (no outstanding tracking).
    let mic_unit = match design.mode() {
        StreamerMode::Read => unit.control_fsm + 8.0 * unit.ff_bit,
        StreamerMode::Write => unit.control_fsm,
    };
    let mics = channels * mic_unit;

    // Extensions: Transposer = full byte shuffle over the wide word;
    // Broadcaster = fan-out wiring only.
    let wide_bits = channels * word_bits as f64;
    let extensions: f64 = design
        .extensions()
        .iter()
        .map(|ext| match ext {
            ExtensionKind::Transposer { .. } => wide_bits * unit.mux_bit,
            ExtensionKind::Broadcaster { factor } => {
                wide_bits * (*factor as f64).log2().max(1.0) * unit.mux_bit * 0.25
            }
        })
        .sum();

    // Remapper: a 3-way mux over the permuted address bits.
    let remapper = 2.0 * ADDR_BITS as f64 * unit.mux_bit;

    DataMaestroArea {
        fifos,
        agu,
        mics,
        extensions,
        remapper,
    }
}

/// System-level area breakdown (Fig. 9a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// GeMM accelerator (PE array + accumulators).
    pub gemm: f64,
    /// Quantization accelerator.
    pub quant: f64,
    /// Per-streamer DataMaestro areas, in spec order (A, B, C, D, E).
    pub datamaestros: Vec<DataMaestroArea>,
    /// Scratchpad SRAM.
    pub scratchpad: f64,
    /// Interleaved crossbar.
    pub crossbar: f64,
    /// RISC-V host.
    pub host: f64,
}

impl AreaBreakdown {
    /// Total DataMaestro area.
    #[must_use]
    pub fn datamaestro_total(&self) -> f64 {
        self.datamaestros.iter().map(DataMaestroArea::total).sum()
    }

    /// Total system area in µm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.gemm
            + self.quant
            + self.datamaestro_total()
            + self.scratchpad
            + self.crossbar
            + self.host
    }

    /// Total system area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.total() / 1e6
    }

    /// A component's share of the total, in percent.
    #[must_use]
    pub fn share_pct(&self, component_um2: f64) -> f64 {
        100.0 * component_um2 / self.total()
    }
}

/// Computes the full system breakdown of Fig. 9a.
#[must_use]
pub fn system_area(spec: &EvaluationSystemSpec, unit: &UnitAreas) -> AreaBreakdown {
    let word_bits = spec.mem.bank_width_bytes() * 8;
    // GeMM accelerator: the MAC array plus the output accumulator tile and
    // operand pipeline registers.
    let pes = spec.array.num_pes() as f64;
    let acc_bits = (spec.array.m_unroll * spec.array.n_unroll * 32) as f64;
    let operand_regs = ((spec.array.a_tile_bytes() + spec.array.b_tile_bytes()) * 8) as f64;
    let gemm = pes * unit.mac8 + (acc_bits + operand_regs) * unit.ff_bit;

    // Quantization accelerator: one rescale unit per output lane.
    let quant = (spec.array.m_unroll * spec.array.n_unroll) as f64 * unit.rescale_unit;

    let datamaestros = spec
        .streamers
        .iter()
        .map(|d| datamaestro_area(d, unit, word_bits))
        .collect();

    let scratchpad = spec.mem.capacity_bytes() as f64 * 8.0 * unit.sram_bit;

    let crosspoints = (spec.total_channels() * spec.mem.num_banks()) as f64;
    let crossbar = crosspoints * word_bits as f64 * unit.xbar_crosspoint_bit;

    AreaBreakdown {
        gemm,
        quant,
        datamaestros,
        scratchpad,
        crossbar,
        host: unit.host_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> AreaBreakdown {
        system_area(&EvaluationSystemSpec::paper(), &UnitAreas::default())
    }

    #[test]
    fn total_area_in_paper_regime() {
        // Paper: 0.61 mm². The structural model should land in the same
        // regime (±40 %), since proportions are what Fig. 9 is about.
        let total = breakdown().total_mm2();
        assert!((0.35..0.9).contains(&total), "total {total} mm²");
    }

    #[test]
    fn datamaestro_share_is_small() {
        let b = breakdown();
        let share = b.share_pct(b.datamaestro_total());
        // Paper: 6.43 %.
        assert!((3.0..12.0).contains(&share), "DM share {share}%");
    }

    #[test]
    fn fifos_dominate_datamaestro_a() {
        // Fig. 9b: FIFOs ≈ 88 %, AGU ≈ 10 %, the rest small.
        let b = breakdown();
        let a = &b.datamaestros[0];
        let fifo_share = 100.0 * a.fifos / a.total();
        let agu_share = 100.0 * a.agu / a.total();
        assert!(fifo_share > 70.0, "fifo share {fifo_share}%");
        assert!((2.0..25.0).contains(&agu_share), "agu share {agu_share}%");
        assert!(a.remapper < a.agu);
        assert!(a.extensions < a.fifos);
    }

    #[test]
    fn streamer_sizes_vary_with_parameters() {
        // The five instances must differ (Fig. 9a: 0.28 %–2.33 % each).
        let b = breakdown();
        let totals: Vec<f64> = b.datamaestros.iter().map(DataMaestroArea::total).collect();
        let min = totals.iter().cloned().fold(f64::MAX, f64::min);
        let max = totals.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "sizes too uniform: {totals:?}");
    }

    #[test]
    fn core_dominates_host() {
        let b = breakdown();
        let core = b.total() - b.host;
        // Paper: core = 74.52 % of the system.
        assert!(b.share_pct(core) > 60.0);
        assert!(b.share_pct(core) < 90.0);
    }

    #[test]
    fn shares_sum_to_hundred() {
        let b = breakdown();
        let sum = b.share_pct(b.gemm)
            + b.share_pct(b.quant)
            + b.share_pct(b.datamaestro_total())
            + b.share_pct(b.scratchpad)
            + b.share_pct(b.crossbar)
            + b.share_pct(b.host);
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
