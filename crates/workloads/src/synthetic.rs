//! The synthetic ablation suite of §IV-B: 260 workloads in three groups.
//!
//! The paper describes the suite by its axes — "various matrix sizes for
//! GeMM and transposed GeMM, along with diverse feature map sizes,
//! channels, kernel sizes, and strides for convolution, effectively
//! representing typical Transformer and CNN layers". This generator spans
//! the same axes deterministically: 100 GeMM + 60 transposed GeMM + 100
//! convolution workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{ConvSpec, GemmSpec, Workload};

/// Number of plain GeMM workloads in the suite.
pub const NUM_GEMM: usize = 100;
/// Number of transposed-GeMM workloads in the suite.
pub const NUM_TRANSPOSED: usize = 60;
/// Number of convolution workloads in the suite.
pub const NUM_CONV: usize = 100;

/// Generates the 260-workload synthetic suite.
///
/// Deterministic: the same suite is produced on every call.
///
/// # Examples
///
/// ```
/// use dm_workloads::{synthetic_suite, WorkloadGroup};
///
/// let suite = synthetic_suite();
/// assert_eq!(suite.len(), 260);
/// let convs = suite
///     .iter()
///     .filter(|w| w.group() == WorkloadGroup::Conv)
///     .count();
/// assert_eq!(convs, 100);
/// ```
#[must_use]
pub fn synthetic_suite() -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(0xDA7A_3457);
    let mut suite = Vec::with_capacity(NUM_GEMM + NUM_TRANSPOSED + NUM_CONV);

    // GeMM sizes typical of Transformer projections and attention blocks:
    // tile-aligned dimensions from 16 to 192.
    let dim_choices = [16usize, 24, 32, 48, 64, 96, 128, 160, 192];
    for _ in 0..NUM_GEMM {
        let m = dim_choices[rng.gen_range(0..dim_choices.len())];
        let n = dim_choices[rng.gen_range(0..dim_choices.len())];
        let k = dim_choices[rng.gen_range(0..dim_choices.len())];
        suite.push(GemmSpec::new(m, n, k).into());
    }
    for _ in 0..NUM_TRANSPOSED {
        let m = dim_choices[rng.gen_range(0..dim_choices.len())];
        let n = dim_choices[rng.gen_range(0..dim_choices.len())];
        let k = dim_choices[rng.gen_range(0..dim_choices.len())];
        suite.push(GemmSpec::transposed(m, n, k).into());
    }

    // Convolutions typical of CNN bodies: output planes from 8×8 to 32×32,
    // channels 8–64, kernels 1/3/5/7, stride 1 dominant with a strided
    // minority (the paper notes strided layers are a small portion of
    // real workloads).
    let chan_choices = [8usize, 16, 32, 64];
    let kernel_choices = [1usize, 3, 3, 3, 5, 7];
    // Downsampling layers in real CNNs are either strided 3×3 body convs or
    // strided 1×1 projection shortcuts (ResNet-style), so the strided
    // minority weights 1×1 kernels heavily.
    let strided_kernel_choices = [1usize, 1, 3, 3, 5];
    for i in 0..NUM_CONV {
        let c_in = chan_choices[rng.gen_range(0..chan_choices.len())];
        let c_out = chan_choices[rng.gen_range(0..chan_choices.len())];
        // Every fourth convolution is strided (downsampling layer).
        let stride = if i % 4 == 3 { 2 } else { 1 };
        let k = if stride > 1 {
            strided_kernel_choices[rng.gen_range(0..strided_kernel_choices.len())]
        } else {
            kernel_choices[rng.gen_range(0..kernel_choices.len())]
        };
        let out_plane = [8usize, 16, 24, 32][rng.gen_range(0..4usize)];
        // The smallest padded input producing exactly `out_plane`, rounded
        // up to even like real (padded) feature maps; the flooring output
        // formula keeps the plane size unchanged.
        let mut input = (out_plane - 1) * stride + k;
        if input % 2 == 1 {
            input += 1;
        }
        suite.push(ConvSpec::new(input, input, c_in, c_out, k, k, stride).into());
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadGroup;

    #[test]
    fn suite_has_260_workloads_in_three_groups() {
        let suite = synthetic_suite();
        assert_eq!(suite.len(), 260);
        let count = |g: WorkloadGroup| suite.iter().filter(|w| w.group() == g).count();
        assert_eq!(count(WorkloadGroup::Gemm), NUM_GEMM);
        assert_eq!(count(WorkloadGroup::TransposedGemm), NUM_TRANSPOSED);
        assert_eq!(count(WorkloadGroup::Conv), NUM_CONV);
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(synthetic_suite(), synthetic_suite());
    }

    #[test]
    fn suite_contains_strided_convolutions() {
        let suite = synthetic_suite();
        let strided = suite
            .iter()
            .filter(|w| matches!(w, Workload::Conv(c) if c.stride > 1))
            .count();
        assert!(strided >= 20, "got {strided} strided convolutions");
        assert!(strided <= 30);
    }

    #[test]
    fn suite_spans_diverse_shapes() {
        let suite = synthetic_suite();
        let distinct: std::collections::HashSet<String> =
            suite.iter().map(ToString::to_string).collect();
        assert!(
            distinct.len() > 150,
            "only {} distinct shapes",
            distinct.len()
        );
    }

    #[test]
    fn all_workloads_have_valid_ideal_cycles() {
        for w in synthetic_suite() {
            assert!(w.ideal_cycles() > 0, "{w}");
            assert_eq!(w.macs(), w.ideal_cycles() * 512, "{w}");
        }
    }
}
