//! Per-layer workload tables for the real-world networks of Table III:
//! ResNet-18, VGG-16, ViT-Base-16 and BERT-Base.
//!
//! Conventions (documented deviations from the raw network definitions, all
//! standard practice for int8 tile-based accelerators and consistent with
//! measuring utilization against the *padded* ideal cycle count):
//!
//! * convolution inputs are pre-padded (`h`/`w` include the zero halo);
//! * channel counts below 8 (RGB stems) are padded to 8;
//! * output planes whose width is not coverable by an 8-pixel tile are
//!   padded to the next coverable size (e.g. 14×14 → 16×16);
//! * fully-connected and attention GeMMs with M = 1 are padded to M = 8,
//!   and output dimensions like 1000 are padded to 1008;
//! * FC layers whose weights exceed the scratchpad (VGG's 25088×4096) are
//!   K-tiled into scratchpad-sized slices with a repeat count — the
//!   physical system streams them slice-wise from DRAM and utilization is
//!   per-slice identical;
//! * pooling/normalization/softmax layers do not run on the GeMM core and
//!   are omitted (Table III reports GeMM-core utilization).

use serde::{Deserialize, Serialize};

use crate::spec::{ConvSpec, GemmSpec, Workload};

/// One layer of a network: a workload plus how many times it runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name.
    pub name: String,
    /// The workload.
    pub workload: Workload,
    /// Number of executions (e.g. per attention head or repeated block).
    pub repeat: u32,
}

impl Layer {
    /// Creates a layer.
    #[must_use]
    pub fn new(name: impl Into<String>, workload: impl Into<Workload>, repeat: u32) -> Self {
        Layer {
            name: name.into(),
            workload: workload.into(),
            repeat,
        }
    }
}

/// A network: an ordered list of layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    /// Network name as reported in Table III.
    pub name: &'static str,
    /// Network family ("CNN" or "Transformer", as in Table III).
    pub family: &'static str,
    /// The layers.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Total multiply-accumulates across all layers and repeats.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.workload.macs() * u64::from(l.repeat))
            .sum()
    }

    /// Total stall-free cycles on the 8×8×8 array.
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.workload.ideal_cycles() * u64::from(l.repeat))
            .sum()
    }

    /// Number of distinct layer entries.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// ResNet-18 (identity-mapping variant), 224×224 input.
#[must_use]
pub fn resnet18() -> Model {
    let mut layers = vec![Layer::new(
        "conv1 7x7/2",
        ConvSpec::new(230, 230, 8, 64, 7, 7, 2),
        1,
    )];
    // layer1: 4 × 3x3,64 @56.
    layers.push(Layer::new(
        "layer1 3x3x64",
        ConvSpec::new(58, 58, 64, 64, 3, 3, 1),
        4,
    ));
    // layer2: downsampling block then stride-1 convs @28.
    layers.push(Layer::new(
        "layer2.0 3x3/2",
        ConvSpec::new(58, 58, 64, 128, 3, 3, 2),
        1,
    ));
    layers.push(Layer::new(
        "layer2.0 1x1/2 shortcut",
        ConvSpec::new(56, 56, 64, 128, 1, 1, 2),
        1,
    ));
    layers.push(Layer::new(
        "layer2 3x3x128",
        ConvSpec::new(30, 30, 128, 128, 3, 3, 1),
        3,
    ));
    // layer3 @14 → padded to 16×16 outputs.
    layers.push(Layer::new(
        "layer3.0 3x3/2",
        ConvSpec::new(34, 34, 128, 256, 3, 3, 2),
        1,
    ));
    layers.push(Layer::new(
        "layer3.0 1x1/2 shortcut",
        ConvSpec::new(31, 31, 128, 256, 1, 1, 2),
        1,
    ));
    layers.push(Layer::new(
        "layer3 3x3x256",
        ConvSpec::new(18, 18, 256, 256, 3, 3, 1),
        3,
    ));
    // layer4 @7 → padded to 8×8 outputs.
    layers.push(Layer::new(
        "layer4.0 3x3/2",
        ConvSpec::new(18, 18, 256, 512, 3, 3, 2),
        1,
    ));
    layers.push(Layer::new(
        "layer4.0 1x1/2 shortcut",
        ConvSpec::new(15, 15, 256, 512, 1, 1, 2),
        1,
    ));
    layers.push(Layer::new(
        "layer4 3x3x512",
        ConvSpec::new(10, 10, 512, 512, 3, 3, 1),
        3,
    ));
    layers.push(Layer::new("fc", GemmSpec::padded(1, 1000, 512), 1));
    Model {
        name: "ResNet-18",
        family: "CNN",
        layers,
    }
}

/// VGG-16, 224×224 input.
#[must_use]
pub fn vgg16() -> Model {
    let layers = vec![
        Layer::new("conv1_1", ConvSpec::new(226, 226, 8, 64, 3, 3, 1), 1),
        Layer::new("conv1_2", ConvSpec::new(226, 226, 64, 64, 3, 3, 1), 1),
        Layer::new("conv2_1", ConvSpec::new(114, 114, 64, 128, 3, 3, 1), 1),
        Layer::new("conv2_2", ConvSpec::new(114, 114, 128, 128, 3, 3, 1), 1),
        Layer::new("conv3_1", ConvSpec::new(58, 58, 128, 256, 3, 3, 1), 1),
        Layer::new("conv3_x", ConvSpec::new(58, 58, 256, 256, 3, 3, 1), 2),
        Layer::new("conv4_1", ConvSpec::new(30, 30, 256, 512, 3, 3, 1), 1),
        Layer::new("conv4_x", ConvSpec::new(30, 30, 512, 512, 3, 3, 1), 2),
        // conv5 works on 14×14 planes, padded to 16×16 outputs.
        Layer::new("conv5_x", ConvSpec::new(18, 18, 512, 512, 3, 3, 1), 3),
        // FC layers, M padded to 8 and weights sliced along K and N so one
        // slice's weights fit a scratchpad bank group (the physical system
        // streams them slice-wise from DRAM; per-slice utilization is
        // identical).
        Layer::new("fc6 (28 slices)", GemmSpec::new(8, 1024, 3584), 28),
        Layer::new("fc7 (8 slices)", GemmSpec::new(8, 1024, 2048), 8),
        Layer::new("fc8 (2 slices)", GemmSpec::padded(1, 1008, 2048), 2),
    ];
    Model {
        name: "VGG-16",
        family: "CNN",
        layers,
    }
}

/// ViT-Base/16, 224×224 input → 196 patches (+CLS = 197, padded to 200).
#[must_use]
pub fn vit_base_16() -> Model {
    let seq = 200; // 197 padded to the next 8-multiple.
    let hidden = 768;
    let heads = 12;
    let head_dim = 64;
    let mlp = 3072;
    let layers = vec![
        // Patch embedding: 196 patches × (16·16·3 = 768) → hidden.
        Layer::new("patch-embed", GemmSpec::new(seq, hidden, 768), 1),
        Layer::new("qkv-proj", GemmSpec::new(seq, 3 * hidden, hidden), 12),
        Layer::new(
            "attn-scores",
            GemmSpec::new(seq, seq, head_dim),
            12 * heads as u32,
        ),
        Layer::new(
            "attn-context",
            GemmSpec::new(seq, head_dim, seq),
            12 * heads as u32,
        ),
        Layer::new("attn-out", GemmSpec::new(seq, hidden, hidden), 12),
        Layer::new("mlp-up", GemmSpec::new(seq, mlp, hidden), 12),
        Layer::new("mlp-down", GemmSpec::new(seq, hidden, mlp), 12),
        Layer::new("head", GemmSpec::padded(1, 1000, hidden), 1),
    ];
    Model {
        name: "ViT-B-16",
        family: "Transformer",
        layers,
    }
}

/// BERT-Base, sequence length 128.
#[must_use]
pub fn bert_base() -> Model {
    let seq = 128;
    let hidden = 768;
    let heads = 12;
    let head_dim = 64;
    let ffn = 3072;
    let layers = vec![
        Layer::new("qkv-proj", GemmSpec::new(seq, 3 * hidden, hidden), 12),
        Layer::new(
            "attn-scores",
            GemmSpec::new(seq, seq, head_dim),
            12 * heads as u32,
        ),
        Layer::new(
            "attn-context",
            GemmSpec::new(seq, head_dim, seq),
            12 * heads as u32,
        ),
        Layer::new("attn-out", GemmSpec::new(seq, hidden, hidden), 12),
        Layer::new("ffn-up", GemmSpec::new(seq, ffn, hidden), 12),
        Layer::new("ffn-down", GemmSpec::new(seq, hidden, ffn), 12),
        Layer::new("pooler", GemmSpec::padded(1, hidden, hidden), 1),
    ];
    Model {
        name: "BERT-Base",
        family: "Transformer",
        layers,
    }
}

/// All four Table III networks.
#[must_use]
pub fn table3_models() -> Vec<Model> {
    vec![resnet18(), vgg16(), vit_base_16(), bert_base()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadGroup;

    #[test]
    fn resnet18_macs_in_expected_ballpark() {
        // ~1.8 GMACs for 224×224 ResNet-18; padding inflates slightly.
        let m = resnet18();
        let gmacs = m.macs() as f64 / 1e9;
        assert!((1.5..3.0).contains(&gmacs), "got {gmacs} GMACs");
        assert_eq!(m.family, "CNN");
    }

    #[test]
    fn vgg16_macs_in_expected_ballpark() {
        // ~15.5 GMACs for VGG-16.
        let gmacs = vgg16().macs() as f64 / 1e9;
        assert!((13.0..19.0).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn bert_base_macs_in_expected_ballpark() {
        // ~11 GMACs per 128-token forward (22 GFLOPs).
        let gmacs = bert_base().macs() as f64 / 1e9;
        assert!((9.0..14.0).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn vit_macs_in_expected_ballpark() {
        // ~17 GMACs per 224×224 forward.
        let gmacs = vit_base_16().macs() as f64 / 1e9;
        assert!((14.0..22.0).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn transformers_are_pure_gemm() {
        for model in [vit_base_16(), bert_base()] {
            assert_eq!(model.family, "Transformer");
            assert!(model
                .layers
                .iter()
                .all(|l| l.workload.group() == WorkloadGroup::Gemm));
        }
    }

    #[test]
    fn cnns_are_mostly_convs() {
        for model in [resnet18(), vgg16()] {
            let convs = model
                .layers
                .iter()
                .filter(|l| l.workload.group() == WorkloadGroup::Conv)
                .count();
            assert!(convs >= model.layers.len() - 3);
        }
    }

    #[test]
    fn ideal_cycles_match_macs() {
        for model in table3_models() {
            assert_eq!(model.macs(), model.ideal_cycles() * 512, "{}", model.name);
            assert!(model.num_layers() > 5);
        }
    }

    #[test]
    fn resnet_has_strided_downsampling() {
        let strided = resnet18()
            .layers
            .iter()
            .filter(|l| matches!(l.workload, Workload::Conv(c) if c.stride > 1))
            .count();
        assert_eq!(strided, 7);
    }
}
