//! Deterministic operand generation and golden outputs per workload.

use dm_accel::reference::{conv2d_ref, gemm_bias_ref, quantize_ref};
use dm_accel::RescaleParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::Workload;

/// Concrete operand data for one workload, generated deterministically from
/// a seed, plus golden expected outputs.
///
/// For GeMM workloads `a` is the `m×k` row-major A matrix and `b` the `k×n`
/// B matrix; for convolutions `a` is the `h×w×c_in` channels-last input and
/// `b` the `c_out×kh×kw×c_in` weights. `bias` has one int32 per output
/// column / channel, and `rescale` is the uniform quantization parameter.
///
/// # Examples
///
/// ```
/// use dm_workloads::{GemmSpec, WorkloadData};
///
/// let data = WorkloadData::generate(GemmSpec::new(8, 8, 8).into(), 42);
/// assert_eq!(data.a.len(), 64);
/// assert_eq!(data.expected_d().len(), 64);
/// let again = WorkloadData::generate(GemmSpec::new(8, 8, 8).into(), 42);
/// assert_eq!(data.a, again.a, "generation is deterministic");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadData {
    /// The workload these operands belong to.
    pub workload: Workload,
    /// A operand (GeMM A matrix or convolution input).
    pub a: Vec<i8>,
    /// B operand (GeMM B matrix or convolution weights).
    pub b: Vec<i8>,
    /// Per-output-column (GeMM) or per-output-channel (conv) bias.
    pub bias: Vec<i32>,
    /// Uniform quantization rescale parameter.
    pub rescale: RescaleParams,
}

impl WorkloadData {
    /// Generates operands for a workload from a seed.
    #[must_use]
    pub fn generate(workload: Workload, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a_len, b_len, bias_len, k_depth) = match workload {
            Workload::Gemm(g) => (g.m * g.k, g.k * g.n, g.n, g.k),
            Workload::Conv(c) => (
                c.h * c.w * c.c_in,
                c.c_out * c.kh * c.kw * c.c_in,
                c.c_out,
                c.c_in * c.kh * c.kw,
            ),
        };
        let a: Vec<i8> = (0..a_len).map(|_| rng.gen_range(-16..=16)).collect();
        let b: Vec<i8> = (0..b_len).map(|_| rng.gen_range(-16..=16)).collect();
        let bias: Vec<i32> = (0..bias_len).map(|_| rng.gen_range(-100..=100)).collect();
        // Shift sized so typical accumulators land inside int8 without
        // saturating everything: |acc| ~ k_depth · 16²/3.
        let shift = (64 - (k_depth as u64).leading_zeros()) + 3;
        let rescale = RescaleParams {
            multiplier: 1,
            shift,
        };
        WorkloadData {
            workload,
            a,
            b,
            bias,
            rescale,
        }
    }

    /// Golden int32 output: `m×n` row-major for GeMM, `oh×ow×c_out`
    /// channels-last for convolutions.
    #[must_use]
    pub fn expected_d(&self) -> Vec<i32> {
        match self.workload {
            Workload::Gemm(g) => gemm_bias_ref(&self.a, &self.b, &self.bias, g.m, g.n, g.k),
            Workload::Conv(c) => conv2d_ref(
                &self.a, &self.b, &self.bias, c.h, c.w, c.c_in, c.c_out, c.kh, c.kw, c.stride,
            ),
        }
    }

    /// Golden quantized int8 output (same shape conventions as
    /// [`expected_d`](Self::expected_d)).
    #[must_use]
    pub fn expected_e(&self) -> Vec<i8> {
        let d = self.expected_d();
        match self.workload {
            Workload::Gemm(g) => quantize_ref(&d, &vec![self.rescale; g.n], g.m, g.n),
            Workload::Conv(c) => {
                quantize_ref(&d, &vec![self.rescale; c.c_out], c.oh() * c.ow(), c.c_out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConvSpec, GemmSpec};

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let w: Workload = GemmSpec::new(16, 16, 16).into();
        let d1 = WorkloadData::generate(w, 1);
        let d2 = WorkloadData::generate(w, 1);
        let d3 = WorkloadData::generate(w, 2);
        assert_eq!(d1, d2);
        assert_ne!(d1.a, d3.a);
    }

    #[test]
    fn gemm_shapes() {
        let d = WorkloadData::generate(GemmSpec::new(16, 24, 8).into(), 0);
        assert_eq!(d.a.len(), 16 * 8);
        assert_eq!(d.b.len(), 8 * 24);
        assert_eq!(d.bias.len(), 24);
        assert_eq!(d.expected_d().len(), 16 * 24);
        assert_eq!(d.expected_e().len(), 16 * 24);
    }

    #[test]
    fn conv_shapes() {
        let c = ConvSpec::new(10, 10, 8, 16, 3, 3, 1);
        let d = WorkloadData::generate(c.into(), 7);
        assert_eq!(d.a.len(), 10 * 10 * 8);
        assert_eq!(d.b.len(), 16 * 9 * 8);
        assert_eq!(d.bias.len(), 16);
        assert_eq!(d.expected_d().len(), 8 * 8 * 16);
    }

    #[test]
    fn rescale_keeps_outputs_unsaturated_typically() {
        let d = WorkloadData::generate(GemmSpec::new(16, 16, 64).into(), 3);
        let e = d.expected_e();
        let saturated = e.iter().filter(|&&v| v == i8::MIN || v == i8::MAX).count();
        assert!(
            saturated < e.len() / 4,
            "{saturated}/{} outputs saturated",
            e.len()
        );
        // …and not all zero either (the shift is not absurdly large).
        assert!(e.iter().any(|&v| v != 0));
    }
}
