//! Workloads for the DataMaestro evaluation.
//!
//! This crate describes *what* the accelerator system computes:
//!
//! * [`spec`] — workload descriptions: [`GemmSpec`] (plain and transposed)
//!   and [`ConvSpec`], with MAC counts and ideal (stall-free) cycle counts
//!   for the 8×8×8 array;
//! * [`layout`] — the blocked tensor data layouts of Fig. 3 (block-row-major
//!   GeMM operands, `C/8·H·W·c8` convolution activations) as byte-exact
//!   pack/unpack transforms;
//! * [`data`] — deterministic operand generation so every run is
//!   reproducible and checkable against golden references;
//! * [`synthetic`] — the 260-workload ablation suite of §IV-B (100 GeMM +
//!   60 transposed GeMM + 100 convolutions spanning the paper's axes);
//! * [`models`] — per-layer tables for ResNet-18, VGG-16, ViT-Base-16 and
//!   BERT-Base used by the Table III reproduction.

pub mod data;
pub mod layout;
pub mod models;
pub mod spec;
pub mod synthetic;

pub use data::WorkloadData;
pub use models::{bert_base, resnet18, table3_models, vgg16, vit_base_16, Layer, Model};
pub use spec::{ConvSpec, GemmSpec, PoolSpec, Workload, WorkloadGroup};
pub use synthetic::synthetic_suite;
