//! Workload specifications.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Tile edge of the evaluation system's 8×8×8 GeMM array; operand
/// dimensions must be multiples of this.
pub const TILE: usize = 8;

/// A general matrix-matrix multiplication `D[M×N] = A[M×K]·B[K×N] + bias`.
///
/// With `transposed_a` set, the A operand is *stored* transposed (K×M) —
/// the workload the paper's Transposer extension targets.
///
/// # Examples
///
/// ```
/// use dm_workloads::GemmSpec;
///
/// let g = GemmSpec::new(64, 64, 64);
/// assert_eq!(g.macs(), 64 * 64 * 64);
/// assert_eq!(g.ideal_cycles(), 64 * 64 * 64 / 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmSpec {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// A operand stored transposed (K-major).
    pub transposed_a: bool,
}

impl GemmSpec {
    /// Creates a plain GeMM spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or not a multiple of [`TILE`]; the
    /// suite and model tables only produce padded, tile-aligned shapes.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        for (name, v) in [("m", m), ("n", n), ("k", k)] {
            assert!(
                v > 0 && v % TILE == 0,
                "{name}={v} must be a positive multiple of {TILE}"
            );
        }
        GemmSpec {
            m,
            n,
            k,
            transposed_a: false,
        }
    }

    /// Creates a transposed-A GeMM spec.
    #[must_use]
    pub fn transposed(m: usize, n: usize, k: usize) -> Self {
        GemmSpec {
            transposed_a: true,
            ..GemmSpec::new(m, n, k)
        }
    }

    /// Creates a spec with every dimension rounded up to the tile size
    /// (used by the model tables for shapes like 197 or 1000).
    #[must_use]
    pub fn padded(m: usize, n: usize, k: usize) -> Self {
        GemmSpec::new(round_up(m), round_up(n), round_up(k))
    }

    /// Multiply-accumulate operations.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.m * self.n * self.k) as u64
    }

    /// Stall-free cycles on the 8×8×8 array: one `8×8×8` tile MAC per
    /// cycle.
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        ((self.m / TILE) * (self.n / TILE) * (self.k / TILE)) as u64
    }

    /// Tile counts `(m_tiles, n_tiles, k_tiles)`.
    #[must_use]
    pub fn tiles(&self) -> (usize, usize, usize) {
        (self.m / TILE, self.n / TILE, self.k / TILE)
    }
}

impl fmt::Display for GemmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.transposed_a {
            write!(f, "gemm-t {}x{}x{}", self.m, self.n, self.k)
        } else {
            write!(f, "gemm {}x{}x{}", self.m, self.n, self.k)
        }
    }
}

/// A 2-D convolution over a pre-padded input.
///
/// `h`/`w` are the input dimensions *including* any zero padding (padding
/// is materialized by the host when staging the input, the standard
/// practice for scratchpad accelerators); `oh = (h-kh)/stride + 1` with
/// flooring division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input height (padded).
    pub h: usize,
    /// Input width (padded).
    pub w: usize,
    /// Input channels (multiple of [`TILE`]).
    pub c_in: usize,
    /// Output channels (multiple of [`TILE`]).
    pub c_out: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (both dimensions).
    pub stride: usize,
}

impl ConvSpec {
    /// Creates a convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if channels are not tile multiples, the kernel exceeds the
    /// input, the stride is zero, or the `oh × ow` output plane cannot be
    /// covered by any `8 = sx × sy` spatial pixel tiling (the factorizations
    /// tried are 8×1, 4×2, 2×4 and 1×8).
    #[must_use]
    pub fn new(
        h: usize,
        w: usize,
        c_in: usize,
        c_out: usize,
        kh: usize,
        kw: usize,
        stride: usize,
    ) -> Self {
        assert!(
            c_in > 0 && c_in.is_multiple_of(TILE),
            "c_in must be a multiple of {TILE}"
        );
        assert!(
            c_out > 0 && c_out.is_multiple_of(TILE),
            "c_out must be a multiple of {TILE}"
        );
        assert!(stride > 0, "stride must be non-zero");
        assert!(kh > 0 && kw > 0, "kernel must be non-empty");
        assert!(h >= kh && w >= kw, "kernel larger than input");
        let spec = ConvSpec {
            h,
            w,
            c_in,
            c_out,
            kh,
            kw,
            stride,
        };
        assert!(
            spec.pixel_tiling().is_some(),
            "output plane {}x{} not coverable by an 8-pixel tile",
            spec.oh(),
            spec.ow()
        );
        spec
    }

    /// Output height.
    #[must_use]
    pub fn oh(&self) -> usize {
        (self.h - self.kh) / self.stride + 1
    }

    /// Output width.
    #[must_use]
    pub fn ow(&self) -> usize {
        (self.w - self.kw) / self.stride + 1
    }

    /// The `(ow_tile, oh_tile)` factorization of the 8-pixel output tile,
    /// preferring the widest `ow` split (contiguous accesses), or `None`
    /// if the plane is not coverable.
    #[must_use]
    pub fn pixel_tiling(&self) -> Option<(usize, usize)> {
        let (oh, ow) = (self.oh(), self.ow());
        [(8, 1), (4, 2), (2, 4), (1, 8)]
            .into_iter()
            .find(|&(sx, sy)| ow % sx == 0 && oh % sy == 0)
    }

    /// Multiply-accumulate operations.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.oh() * self.ow() * self.c_out * self.c_in * self.kh * self.kw) as u64
    }

    /// Stall-free cycles on the 8×8×8 array (implicit-im2col mapping:
    /// M = 8 output pixels, N = 8 output channels, K = 8 input channels).
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        (self.oh() * self.ow() / TILE
            * (self.c_out / TILE)
            * (self.c_in / TILE)
            * self.kh
            * self.kw) as u64
    }

    /// The GeMM this convolution lowers to under (implicit) im2col:
    /// `M = oh·ow`, `N = c_out`, `K = c_in·kh·kw`.
    #[must_use]
    pub fn as_im2col_gemm(&self) -> (usize, usize, usize) {
        (
            self.oh() * self.ow(),
            self.c_out,
            self.c_in * self.kh * self.kw,
        )
    }
}

impl fmt::Display for ConvSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv {}x{}x{}->{} k{}x{} s{}",
            self.h, self.w, self.c_in, self.c_out, self.kh, self.kw, self.stride
        )
    }
}

/// A 2-D max-pooling workload (runs on the streamer-built pooling system,
/// not the GeMM core — see `dm_system::pool`).
///
/// Same geometry conventions as [`ConvSpec`]: `h`/`w` include padding,
/// channels are tile multiples, output uses flooring division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Channels (multiple of [`TILE`]).
    pub c: usize,
    /// Square window edge.
    pub k: usize,
    /// Stride (both dimensions).
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics under the same geometry conditions as [`ConvSpec::new`].
    #[must_use]
    pub fn new(h: usize, w: usize, c: usize, k: usize, stride: usize) -> Self {
        // Pooling maps onto the same pixel-tile machinery as convolution;
        // reuse its validation via an equivalent conv geometry.
        let _ = ConvSpec::new(h, w, c.max(TILE), c.max(TILE), k, k, stride);
        assert!(
            c > 0 && c.is_multiple_of(TILE),
            "channels must be a multiple of {TILE}"
        );
        PoolSpec { h, w, c, k, stride }
    }

    /// Output height.
    #[must_use]
    pub fn oh(&self) -> usize {
        (self.h - self.k) / self.stride + 1
    }

    /// Output width.
    #[must_use]
    pub fn ow(&self) -> usize {
        (self.w - self.k) / self.stride + 1
    }

    /// The convolution geometry this pooling shares its access pattern
    /// with (used for pixel-tiling selection).
    #[must_use]
    pub fn as_conv(&self) -> ConvSpec {
        ConvSpec::new(self.h, self.w, self.c, self.c, self.k, self.k, self.stride)
    }

    /// Stall-free cycles on the 8-lane pooling unit: one 8-pixel × 8-channel
    /// tile comparison per cycle, `k²` window steps per output tile.
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        (self.oh() * self.ow() / TILE * (self.c / TILE) * self.k * self.k) as u64
    }
}

impl fmt::Display for PoolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "maxpool {}x{}x{} k{} s{}",
            self.h, self.w, self.c, self.k, self.stride
        )
    }
}

/// A workload for the evaluation system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// GeMM (plain or transposed-A).
    Gemm(GemmSpec),
    /// 2-D convolution.
    Conv(ConvSpec),
}

/// The three kernel groups of the paper's ablation study (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadGroup {
    /// Plain GeMM.
    Gemm,
    /// Transposed-A GeMM.
    TransposedGemm,
    /// Convolution.
    Conv,
}

impl fmt::Display for WorkloadGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadGroup::Gemm => write!(f, "GeMM"),
            WorkloadGroup::TransposedGemm => write!(f, "Transposed GeMM"),
            WorkloadGroup::Conv => write!(f, "Convolution"),
        }
    }
}

impl Workload {
    /// The ablation group this workload belongs to.
    #[must_use]
    pub fn group(&self) -> WorkloadGroup {
        match self {
            Workload::Gemm(g) if g.transposed_a => WorkloadGroup::TransposedGemm,
            Workload::Gemm(_) => WorkloadGroup::Gemm,
            Workload::Conv(_) => WorkloadGroup::Conv,
        }
    }

    /// Multiply-accumulate operations.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match self {
            Workload::Gemm(g) => g.macs(),
            Workload::Conv(c) => c.macs(),
        }
    }

    /// Stall-free cycles on the 8×8×8 array.
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        match self {
            Workload::Gemm(g) => g.ideal_cycles(),
            Workload::Conv(c) => c.ideal_cycles(),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Gemm(g) => g.fmt(f),
            Workload::Conv(c) => c.fmt(f),
        }
    }
}

impl From<GemmSpec> for Workload {
    fn from(g: GemmSpec) -> Self {
        Workload::Gemm(g)
    }
}

impl From<ConvSpec> for Workload {
    fn from(c: ConvSpec) -> Self {
        Workload::Conv(c)
    }
}

/// Rounds `v` up to the next multiple of [`TILE`].
#[must_use]
pub fn round_up(v: usize) -> usize {
    v.div_ceil(TILE) * TILE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_counts() {
        let g = GemmSpec::new(16, 24, 32);
        assert_eq!(g.macs(), 16 * 24 * 32);
        assert_eq!(g.ideal_cycles(), 2 * 3 * 4);
        assert_eq!(g.tiles(), (2, 3, 4));
        assert_eq!(g.to_string(), "gemm 16x24x32");
    }

    #[test]
    fn transposed_flag_and_group() {
        let g = GemmSpec::transposed(8, 8, 8);
        assert!(g.transposed_a);
        assert_eq!(Workload::from(g).group(), WorkloadGroup::TransposedGemm);
        assert_eq!(g.to_string(), "gemm-t 8x8x8");
        assert_eq!(
            Workload::from(GemmSpec::new(8, 8, 8)).group(),
            WorkloadGroup::Gemm
        );
    }

    #[test]
    fn padding_rounds_up() {
        let g = GemmSpec::padded(197, 1000, 768);
        assert_eq!((g.m, g.n, g.k), (200, 1000, 768));
        assert_eq!(round_up(8), 8);
        assert_eq!(round_up(9), 16);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn unaligned_gemm_panics() {
        let _ = GemmSpec::new(10, 8, 8);
    }

    #[test]
    fn conv_output_geometry() {
        // 3×3 stride 1 on a padded 58×58 input → 56×56.
        let c = ConvSpec::new(58, 58, 64, 64, 3, 3, 1);
        assert_eq!((c.oh(), c.ow()), (56, 56));
        assert_eq!(c.pixel_tiling(), Some((8, 1)));
        assert_eq!(c.macs(), 56 * 56 * 64 * 64 * 9);
        assert_eq!(c.ideal_cycles(), 56 * 56 / 8 * 8 * 8 * 9);
    }

    #[test]
    fn conv_strided_geometry_with_floor() {
        // 7×7 stride 2 on a 230×230 padded input → floor(223/2)+1 = 112.
        let c = ConvSpec::new(230, 230, 8, 64, 7, 7, 2);
        assert_eq!((c.oh(), c.ow()), (112, 112));
    }

    #[test]
    fn conv_pixel_tiling_fallbacks() {
        // 28×28 output: ow 28 % 8 != 0 → 4×2 tiling.
        let c = ConvSpec::new(30, 30, 8, 8, 3, 3, 1);
        assert_eq!((c.oh(), c.ow()), (28, 28));
        assert_eq!(c.pixel_tiling(), Some((4, 2)));
    }

    #[test]
    #[should_panic(expected = "not coverable")]
    fn uncoverable_output_plane_panics() {
        // 7×7 output: no 8-pixel factorization fits.
        let _ = ConvSpec::new(9, 9, 8, 8, 3, 3, 1);
    }

    #[test]
    fn im2col_lowering_matches_macs() {
        let c = ConvSpec::new(10, 10, 16, 8, 3, 3, 1);
        let (m, n, k) = c.as_im2col_gemm();
        assert_eq!(m * n * k, c.macs() as usize);
    }

    #[test]
    fn workload_display_and_dispatch() {
        let w: Workload = ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into();
        assert_eq!(w.group(), WorkloadGroup::Conv);
        assert!(w.to_string().starts_with("conv"));
        assert!(w.macs() > 0);
        assert!(w.ideal_cycles() > 0);
        assert_eq!(WorkloadGroup::Conv.to_string(), "Convolution");
    }
}
