//! Tensor data layouts (Fig. 3 of the paper).
//!
//! These functions define, byte for byte, how operands live in the
//! scratchpad. The compiler programs the streamer AGUs against exactly
//! these layouts, and the golden checks unpack results through them — so a
//! single source of truth pins the whole data path.
//!
//! **GeMM** operands use the 4-D *block-row-major* layout: the matrix is
//! tiled into 8×8 tiles; tiles are stored row-major over the tile grid and
//! each tile is stored row-major internally.
//!
//! **Convolution** activations use the blocked channel layout `C/8·H·W·c8`:
//! the innermost 8 bytes hold 8 consecutive channels of one pixel, pixels
//! are row-major, and channel *blocks* are the outermost dimension.
//! Convolution outputs use the same shape over output channels, with int32
//! (D) or int8 (E) pixels.

use dm_accel::word::{decode_i32, decode_i8, encode_i32};

use crate::spec::TILE;

/// Packs an `m×k` row-major int8 matrix into block-row-major tiles.
///
/// Tile `(mt, kt)` starts at byte `(mt·(k/8) + kt)·64`.
///
/// # Panics
///
/// Panics if the dimensions are not tile multiples or the slice length
/// mismatches.
#[must_use]
pub fn pack_gemm_a(a: &[i8], m: usize, k: usize) -> Vec<u8> {
    pack_blocked_i8(a, m, k)
}

/// Packs A *transposed*: the stored image is `Aᵀ` (a `k×m` matrix) in
/// block-row-major layout. Reading tile `(kt, mt)` and transposing it
/// on the fly recovers A's tile `(mt, kt)`.
#[must_use]
pub fn pack_gemm_a_transposed(a: &[i8], m: usize, k: usize) -> Vec<u8> {
    let mut at = vec![0i8; k * m];
    for r in 0..m {
        for c in 0..k {
            at[c * m + r] = a[r * k + c];
        }
    }
    pack_blocked_i8(&at, k, m)
}

/// Packs a `k×n` row-major int8 matrix into block-row-major tiles.
#[must_use]
pub fn pack_gemm_b(b: &[i8], k: usize, n: usize) -> Vec<u8> {
    pack_blocked_i8(b, k, n)
}

/// Packs an `m×n` row-major int32 matrix into block-row-major tiles
/// (the C and D operand layout).
#[must_use]
pub fn pack_gemm_cd(values: &[i32], m: usize, n: usize) -> Vec<u8> {
    assert_eq!(values.len(), m * n, "matrix length");
    assert!(
        m.is_multiple_of(TILE) && n.is_multiple_of(TILE),
        "dimensions must be tiled"
    );
    let (mt, nt) = (m / TILE, n / TILE);
    let mut out = vec![0u8; m * n * 4];
    for bm in 0..mt {
        for bn in 0..nt {
            let tile_base = (bm * nt + bn) * TILE * TILE * 4;
            for r in 0..TILE {
                for c in 0..TILE {
                    let v = values[(bm * TILE + r) * n + bn * TILE + c];
                    let o = tile_base + (r * TILE + c) * 4;
                    out[o..o + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Unpacks a block-row-major int32 image back to an `m×n` row-major matrix.
#[must_use]
pub fn unpack_gemm_cd(bytes: &[u8], m: usize, n: usize) -> Vec<i32> {
    assert_eq!(bytes.len(), m * n * 4, "image length");
    let nt = n / TILE;
    let flat = decode_i32(bytes);
    let mut out = vec![0i32; m * n];
    for (i, &v) in flat.iter().enumerate() {
        let tile = i / (TILE * TILE);
        let within = i % (TILE * TILE);
        let (bm, bn) = (tile / nt, tile % nt);
        let (r, c) = (within / TILE, within % TILE);
        out[(bm * TILE + r) * n + bn * TILE + c] = v;
    }
    out
}

/// Unpacks a block-row-major int8 image back to an `m×n` row-major matrix
/// (the E output layout).
#[must_use]
pub fn unpack_gemm_e(bytes: &[u8], m: usize, n: usize) -> Vec<i8> {
    assert_eq!(bytes.len(), m * n, "image length");
    let nt = n / TILE;
    let flat = decode_i8(bytes);
    let mut out = vec![0i8; m * n];
    for (i, &v) in flat.iter().enumerate() {
        let tile = i / (TILE * TILE);
        let within = i % (TILE * TILE);
        let (bm, bn) = (tile / nt, tile % nt);
        let (r, c) = (within / TILE, within % TILE);
        out[(bm * TILE + r) * n + bn * TILE + c] = v;
    }
    out
}

/// Packs a bias vector as contiguous little-endian int32s.
#[must_use]
pub fn pack_bias(bias: &[i32]) -> Vec<u8> {
    encode_i32(bias)
}

/// Packs an `h×w×c` channels-last int8 activation into the `C/8·H·W·c8`
/// blocked layout: pixel `(cb, y, x)` starts at byte `((cb·h + y)·w + x)·8`.
///
/// # Panics
///
/// Panics if `c` is not a multiple of 8 or lengths mismatch.
#[must_use]
pub fn pack_conv_input(input: &[i8], h: usize, w: usize, c: usize) -> Vec<u8> {
    assert_eq!(input.len(), h * w * c, "input length");
    assert_eq!(c % TILE, 0, "channels must be a multiple of 8");
    let cb = c / TILE;
    let mut out = vec![0u8; h * w * c];
    for b in 0..cb {
        for y in 0..h {
            for x in 0..w {
                let dst = ((b * h + y) * w + x) * TILE;
                for ci in 0..TILE {
                    out[dst + ci] = input[(y * w + x) * c + b * TILE + ci] as u8;
                }
            }
        }
    }
    out
}

/// Packs `c_out×kh×kw×c_in` weights into weight tiles: tile
/// `(co_t, ci_t, ky, kx)` starts at
/// `(((co_t·(c_in/8) + ci_t)·kh + ky)·kw + kx)·64` and holds an 8×8 int8
/// tile with rows = input channels (K) and columns = output channels (N) —
/// exactly the B-operand orientation the GeMM array consumes.
#[must_use]
pub fn pack_conv_weights(
    weights: &[i8],
    c_out: usize,
    kh: usize,
    kw: usize,
    c_in: usize,
) -> Vec<u8> {
    assert_eq!(weights.len(), c_out * kh * kw * c_in, "weight length");
    assert!(
        c_out.is_multiple_of(TILE) && c_in.is_multiple_of(TILE),
        "channel tiling"
    );
    let (cot, cit) = (c_out / TILE, c_in / TILE);
    let mut out = vec![0u8; weights.len()];
    for co_t in 0..cot {
        for ci_t in 0..cit {
            for ky in 0..kh {
                for kx in 0..kw {
                    let tile_base = (((co_t * cit + ci_t) * kh + ky) * kw + kx) * TILE * TILE;
                    for ci8 in 0..TILE {
                        for co8 in 0..TILE {
                            let co = co_t * TILE + co8;
                            let ci = ci_t * TILE + ci8;
                            out[tile_base + ci8 * TILE + co8] =
                                weights[((co * kh + ky) * kw + kx) * c_in + ci] as u8;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Packs an `oh×ow×c_out` channels-last int32 result into the blocked
/// convolution output layout (`Cout/8·OH·OW·c8`, 32 bytes per pixel block).
#[must_use]
pub fn pack_conv_out_i32(values: &[i32], oh: usize, ow: usize, c_out: usize) -> Vec<u8> {
    assert_eq!(values.len(), oh * ow * c_out, "output length");
    assert_eq!(c_out % TILE, 0, "channel tiling");
    let cb = c_out / TILE;
    let mut out = vec![0u8; oh * ow * c_out * 4];
    for b in 0..cb {
        for y in 0..oh {
            for x in 0..ow {
                for ci in 0..TILE {
                    let v = values[(y * ow + x) * c_out + b * TILE + ci];
                    let o = (((b * oh + y) * ow + x) * TILE + ci) * 4;
                    out[o..o + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Packs an `oh×ow×c_out` channels-last int8 result into the blocked
/// convolution output layout (8 bytes per pixel block).
#[must_use]
pub fn pack_conv_out_i8(values: &[i8], oh: usize, ow: usize, c_out: usize) -> Vec<u8> {
    assert_eq!(values.len(), oh * ow * c_out, "output length");
    assert_eq!(c_out % TILE, 0, "channel tiling");
    let cb = c_out / TILE;
    let mut out = vec![0u8; oh * ow * c_out];
    for b in 0..cb {
        for y in 0..oh {
            for x in 0..ow {
                for ci in 0..TILE {
                    out[((b * oh + y) * ow + x) * TILE + ci] =
                        values[(y * ow + x) * c_out + b * TILE + ci] as u8;
                }
            }
        }
    }
    out
}

/// Packs an `m×n` row-major int8 matrix into block-row-major tiles (the E
/// output layout; shares the A/B operand packing).
#[must_use]
pub fn pack_gemm_e(values: &[i8], m: usize, n: usize) -> Vec<u8> {
    pack_blocked_i8(values, m, n)
}

/// Unpacks a blocked int32 convolution output (`Cout/8·OH·OW·c8`, 32 bytes
/// per pixel block) back to `oh×ow×c_out` channels-last order.
#[must_use]
pub fn unpack_conv_out_i32(bytes: &[u8], oh: usize, ow: usize, c_out: usize) -> Vec<i32> {
    assert_eq!(bytes.len(), oh * ow * c_out * 4, "image length");
    let cb = c_out / TILE;
    let flat = decode_i32(bytes);
    let mut out = vec![0i32; oh * ow * c_out];
    for b in 0..cb {
        for y in 0..oh {
            for x in 0..ow {
                for ci in 0..TILE {
                    out[(y * ow + x) * c_out + b * TILE + ci] =
                        flat[((b * oh + y) * ow + x) * TILE + ci];
                }
            }
        }
    }
    out
}

/// Unpacks a blocked int8 convolution output (`Cout/8·OH·OW·c8`, 8 bytes
/// per pixel block) back to `oh×ow×c_out` channels-last order.
#[must_use]
pub fn unpack_conv_out_i8(bytes: &[u8], oh: usize, ow: usize, c_out: usize) -> Vec<i8> {
    assert_eq!(bytes.len(), oh * ow * c_out, "image length");
    let cb = c_out / TILE;
    let flat = decode_i8(bytes);
    let mut out = vec![0i8; oh * ow * c_out];
    for b in 0..cb {
        for y in 0..oh {
            for x in 0..ow {
                for ci in 0..TILE {
                    out[(y * ow + x) * c_out + b * TILE + ci] =
                        flat[((b * oh + y) * ow + x) * TILE + ci];
                }
            }
        }
    }
    out
}

fn pack_blocked_i8(matrix: &[i8], rows: usize, cols: usize) -> Vec<u8> {
    assert_eq!(matrix.len(), rows * cols, "matrix length");
    assert!(
        rows.is_multiple_of(TILE) && cols.is_multiple_of(TILE),
        "dimensions must be tiled"
    );
    let ct = cols / TILE;
    let mut out = vec![0u8; rows * cols];
    for br in 0..rows / TILE {
        for bc in 0..ct {
            let tile_base = (br * ct + bc) * TILE * TILE;
            for r in 0..TILE {
                for c in 0..TILE {
                    out[tile_base + r * TILE + c] =
                        matrix[(br * TILE + r) * cols + bc * TILE + c] as u8;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_a_tile_addressing() {
        // 16×16 matrix: element (8, 0) is the first element of tile (1, 0),
        // which starts at byte (1*2 + 0)*64 = 128.
        let a: Vec<i8> = (0..256).map(|i| i as i8).collect();
        let packed = pack_gemm_a(&a, 16, 16);
        assert_eq!(packed[128] as i8, a[8 * 16]);
        // Element (0, 8) starts tile (0, 1) at byte 64.
        assert_eq!(packed[64] as i8, a[8]);
    }

    #[test]
    fn cd_roundtrip() {
        let m: Vec<i32> = (0..16 * 24).map(|i| i * 3 - 100).collect();
        let packed = pack_gemm_cd(&m, 16, 24);
        assert_eq!(unpack_gemm_cd(&packed, 16, 24), m);
    }

    #[test]
    fn e_unpack_inverts_blocked_layout() {
        // Pack via the i32 packer's structure mirror: build blocked bytes by
        // hand for an 8×16 i8 matrix.
        let m: Vec<i8> = (0..128).map(|i| i as i8).collect();
        // pack with the shared helper (same layout as A/B operands).
        let packed = pack_blocked_i8(&m, 8, 16);
        assert_eq!(unpack_gemm_e(&packed, 8, 16), m);
    }

    #[test]
    fn transposed_pack_stores_a_transpose() {
        let m = 8;
        let k = 16;
        let a: Vec<i8> = (0..m * k).map(|i| i as i8).collect();
        let packed_t = pack_gemm_a_transposed(&a, m, k);
        // The stored image is Aᵀ (16×8) block-row-major: its element
        // (r=c_of_a, c=r_of_a). Tile (0,0) byte (r,c) = Aᵀ[r][c] = A[c][r].
        assert_eq!(packed_t[1] as i8, a[k], "Aᵀ[0][1] == A[1][0]");
        // Roundtrip: unpack as a k×m blocked i8 image equals Aᵀ.
        let unpacked = unpack_gemm_e(&packed_t, k, m);
        for r in 0..k {
            for c in 0..m {
                assert_eq!(unpacked[r * m + c], a[c * k + r]);
            }
        }
    }

    #[test]
    fn conv_input_pixel_block_addressing() {
        // 2×2 image, 16 channels: pixel (0, 1) channel block 1 starts at
        // ((1*2 + 0)*2 + 1)*8 = 40.
        let input: Vec<i8> = (0..2 * 2 * 16).map(|i| i as i8).collect();
        let packed = pack_conv_input(&input, 2, 2, 16);
        assert_eq!(packed[40] as i8, input[16 + 8]);
    }

    #[test]
    fn conv_weight_tile_orientation() {
        // Weight tile rows must be input channels, columns output channels.
        let (c_out, kh, kw, c_in) = (8, 1, 1, 8);
        let w: Vec<i8> = (0..c_out * c_in).map(|i| i as i8).collect();
        let packed = pack_conv_weights(&w, c_out, kh, kw, c_in);
        // tile byte (ci8=2, co8=3) == W[co=3][0][0][ci=2] == w[3*8+2].
        assert_eq!(packed[2 * 8 + 3] as i8, w[3 * 8 + 2]);
    }

    #[test]
    fn conv_out_i32_roundtrip() {
        let (oh, ow, c) = (2, 4, 16);
        let vals: Vec<i32> = (0..oh * ow * c).map(|i| i as i32 - 50).collect();
        let blocked = pack_conv_out_i32(&vals, oh, ow, c);
        assert_eq!(unpack_conv_out_i32(&blocked, oh, ow, c), vals);
    }

    #[test]
    fn conv_out_i8_roundtrip() {
        let (oh, ow, c) = (4, 2, 8);
        let vals: Vec<i8> = (0..oh * ow * c).map(|i| i as i8).collect();
        let blocked = pack_conv_out_i8(&vals, oh, ow, c);
        assert_eq!(unpack_conv_out_i8(&blocked, oh, ow, c), vals);
    }

    #[test]
    fn gemm_e_roundtrip() {
        let vals: Vec<i8> = (0..16 * 16).map(|i| i as i8).collect();
        let packed = pack_gemm_e(&vals, 16, 16);
        assert_eq!(unpack_gemm_e(&packed, 16, 16), vals);
    }

    proptest! {
        /// pack ∘ unpack is the identity on GeMM int32 images.
        #[test]
        fn cd_pack_unpack_identity(
            vals in proptest::collection::vec(any::<i32>(), 8 * 8 * 4),
        ) {
            let packed = pack_gemm_cd(&vals, 16, 16);
            prop_assert_eq!(unpack_gemm_cd(&packed, 16, 16), vals);
        }

        /// Blocked conv input layout places every channel exactly once.
        #[test]
        fn conv_input_is_permutation(
            vals in proptest::collection::vec(any::<i8>(), 3 * 4 * 8),
        ) {
            let packed = pack_conv_input(&vals, 3, 4, 8);
            let mut a: Vec<i8> = packed.iter().map(|&b| b as i8).collect();
            let mut b = vals.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
