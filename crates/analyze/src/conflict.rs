//! Bank-conflict prediction from the loop nest and the bit permutation.
//!
//! Under GIMA(g) the bank of word `w` is `(w / (g·rows))·g + (w mod g)`
//! (see [`crate::pattern::bank_of_word`]). Two channels of one burst with
//! word-offset delta `d` can therefore collide only when
//!
//! 1. `d ≡ 0 (mod g)` — same bank *within* a group (independent of the
//!    temporal address, because the delta is constant), **and**
//! 2. `|d| < g·rows` — the two words can fall into the *same* group (a
//!    delta of a whole group span or more always lands in a later group).
//!
//! Channel pairs failing either condition are **proven** conflict-free for
//! every temporal step — this is the paper's Fig 7a ⑥ argument made
//! checkable: the compiler's GIMA placement gives each operand spatial
//! offsets that are distinct mod `g`, so no pair ever satisfies (1).
//!
//! For candidate pairs the analyzer walks the temporal nest (dual-counter
//! walk, capped) to find the first burst where a candidate pair actually
//! shares a bank. If the whole nest is walked without a collision the
//! stream is conflict-free by exhaustion; if the cap is hit the verdict
//! degrades to "possible" (sound for the conflict-free direction: we never
//! claim freedom we cannot prove).

use crate::pattern::{bank_of_word, StreamSummary};

/// Enumeration budget for confirming candidate collisions. Large enough
/// for every fig7/table3 nest (≤ ~1 M steps); beyond it the verdict is
/// conservative.
const STEP_CAP: u64 = 1 << 22;

/// A channel pair that *can* collide on a bank (necessary conditions (1)
/// and (2) hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidatePair {
    /// The two channel indices.
    pub channels: (usize, usize),
    /// Their constant word-offset delta.
    pub delta_words: i64,
}

/// Verdict of the intra-burst analysis of one stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BurstVerdict {
    /// No burst of this stream can ever have two channels on one bank.
    ConflictFree,
    /// Collisions are possible; if `first_step` is `Some`, the burst at
    /// that temporal step provably collides and (while the stream is still
    /// in lock-step) costs `events_at_first` lost arbitrations.
    Conflicting {
        /// Channel pairs satisfying the necessary collision conditions.
        pairs: Vec<CandidatePair>,
        /// First temporal step whose burst provably collides, if found
        /// within the enumeration budget.
        first_step: Option<u64>,
        /// `Σ (k−1)` over banks with `k > 1` contenders at `first_step`.
        events_at_first: u64,
    },
}

impl BurstVerdict {
    /// `true` for the proven conflict-free verdict.
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        matches!(self, BurstVerdict::ConflictFree)
    }
}

/// Analyzes one stream's bursts for intra-stream bank collisions.
#[must_use]
pub fn intra_burst(s: &StreamSummary) -> BurstVerdict {
    let g = s.group as i64;
    let span = s.group_words as i64;
    let mut pairs = Vec::new();
    for i in 0..s.offsets_words.len() {
        for j in i + 1..s.offsets_words.len() {
            let d = s.offsets_words[j] - s.offsets_words[i];
            if d.rem_euclid(g) == 0 && d.abs() < span {
                pairs.push(CandidatePair {
                    channels: (i, j),
                    delta_words: d,
                });
            }
        }
    }
    if pairs.is_empty() {
        return BurstVerdict::ConflictFree;
    }

    // Candidates exist: walk the nest to find the first burst that really
    // collides (candidates with `d ≠ 0` still need the two words to land
    // in the same group, which depends on the temporal address).
    let mut walker = NestWalker::new(&s.temporal_bounds, &s.temporal_strides_words);
    let steps = s.steps.min(STEP_CAP);
    for step in 0..steps {
        let q = s.base_word as i64 + walker.offset();
        let collides = pairs.iter().any(|p| {
            let (i, j) = p.channels;
            let wi = (q + s.offsets_words[i]) as u64;
            let wj = (q + s.offsets_words[j]) as u64;
            bank_of_word(wi, s.group, s.group_words) == bank_of_word(wj, s.group, s.group_words)
        });
        if collides {
            let events = burst_conflict_events(s, q);
            return BurstVerdict::Conflicting {
                pairs,
                first_step: Some(step),
                events_at_first: events,
            };
        }
        walker.step();
    }
    if s.steps <= STEP_CAP {
        // Exhaustively walked: the candidates never share a group.
        BurstVerdict::ConflictFree
    } else {
        BurstVerdict::Conflicting {
            pairs,
            first_step: None,
            events_at_first: 0,
        }
    }
}

/// `Σ (k−1)` over banks contended by `k > 1` channels of the burst at
/// temporal word address `q` — the arbitration losses of one lock-step
/// issue of this burst.
fn burst_conflict_events(s: &StreamSummary, q: i64) -> u64 {
    let mut banks: Vec<u64> = s
        .offsets_words
        .iter()
        .map(|&o| bank_of_word((q + o) as u64, s.group, s.group_words))
        .collect();
    banks.sort_unstable();
    let mut events = 0;
    let mut run = 1;
    for w in banks.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            events += run - 1;
            run = 1;
        }
    }
    events + run - 1
}

/// Dual-counter walk over a temporal nest, tracking only the running word
/// offset (what [`datamaestro::agu::TemporalAgu`] does, minus the address
/// emission).
struct NestWalker {
    bounds: Vec<u64>,
    strides: Vec<i64>,
    indices: Vec<u64>,
    offsets: Vec<i64>,
}

impl NestWalker {
    fn new(bounds: &[u64], strides: &[i64]) -> Self {
        NestWalker {
            bounds: bounds.to_vec(),
            strides: strides.to_vec(),
            indices: vec![0; bounds.len()],
            offsets: vec![0; bounds.len()],
        }
    }

    fn offset(&self) -> i64 {
        self.offsets.iter().sum()
    }

    fn step(&mut self) {
        for d in 0..self.bounds.len() {
            self.indices[d] += 1;
            if self.indices[d] < self.bounds[d] {
                self.offsets[d] += self.strides[d];
                return;
            }
            self.indices[d] = 0;
            self.offsets[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::summarize;
    use datamaestro::{DesignConfig, RuntimeConfig, StreamerMode};
    use dm_mem::{AddressingMode, MemConfig};

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 1024).unwrap()
    }

    fn summary(mode: AddressingMode, spatial_strides: [i64; 1]) -> StreamSummary {
        let design = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([8])
            .temporal_dims(3)
            .build()
            .unwrap();
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([8, 4], [64, 512])
            .spatial_strides(spatial_strides)
            .addressing_mode(mode)
            .build();
        summarize(&design, &rt, &mem()).unwrap()
    }

    #[test]
    fn consecutive_words_are_conflict_free_under_fima_and_gima() {
        for mode in [
            AddressingMode::FullyInterleaved,
            AddressingMode::GroupedInterleaved { group_banks: 8 },
        ] {
            let v = intra_burst(&summary(mode, [8]));
            assert!(v.is_conflict_free(), "{mode}: {v:?}");
        }
    }

    #[test]
    fn nima_burst_collides_on_first_step() {
        // All 8 channels in one bank: 7 lost arbitrations at step 0.
        let v = intra_burst(&summary(AddressingMode::NonInterleaved, [8]));
        let BurstVerdict::Conflicting {
            pairs,
            first_step,
            events_at_first,
        } = v
        else {
            panic!("expected conflicts");
        };
        assert_eq!(pairs.len(), 28, "all channel pairs are candidates");
        assert_eq!(first_step, Some(0));
        assert_eq!(events_at_first, 7);
    }

    #[test]
    fn group_span_delta_never_collides() {
        // Spatial stride of a whole group span: every channel lands in its
        // own group under GIMA(1) — deltas are multiples of the span, so
        // condition (2) rules every pair out.
        let design = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([4])
            .build()
            .unwrap();
        let rt = RuntimeConfig::builder()
            .temporal([4], [64])
            .spatial_strides([8 * 1024])
            .addressing_mode(AddressingMode::NonInterleaved)
            .build();
        let s = summarize(&design, &rt, &mem()).unwrap();
        assert!(intra_burst(&s).is_conflict_free());
    }

    #[test]
    fn strided_offsets_collide_under_small_group() {
        // Offsets {0, 2, 4, …, 14} words under GIMA(8): pair deltas of 8
        // words collide whenever both words share a group (here: always).
        let v = intra_burst(&summary(
            AddressingMode::GroupedInterleaved { group_banks: 8 },
            [16],
        ));
        let BurstVerdict::Conflicting {
            pairs,
            first_step,
            events_at_first,
        } = v
        else {
            panic!("expected conflicts");
        };
        assert_eq!(pairs.len(), 4, "pairs (0,4),(1,5),(2,6),(3,7)");
        assert_eq!(first_step, Some(0));
        assert_eq!(events_at_first, 4);
    }

    #[test]
    fn verdict_matches_brute_force_bank_multisets() {
        // Ground truth: enumerate every burst's bank multiset directly.
        for (mode, strides) in [
            (AddressingMode::FullyInterleaved, [8i64]),
            (AddressingMode::FullyInterleaved, [24]),
            (AddressingMode::GroupedInterleaved { group_banks: 4 }, [8]),
            (AddressingMode::GroupedInterleaved { group_banks: 8 }, [40]),
            (AddressingMode::NonInterleaved, [8]),
        ] {
            let s = summary(mode, strides);
            let mut any_collision = false;
            let mut walker = NestWalker::new(&s.temporal_bounds, &s.temporal_strides_words);
            for _ in 0..s.steps {
                let q = s.base_word as i64 + walker.offset();
                let mut banks: Vec<u64> = s
                    .offsets_words
                    .iter()
                    .map(|&o| bank_of_word((q + o) as u64, s.group, s.group_words))
                    .collect();
                banks.sort_unstable();
                any_collision |= banks.windows(2).any(|w| w[0] == w[1]);
                walker.step();
            }
            assert_eq!(
                !intra_burst(&s).is_conflict_free(),
                any_collision,
                "mode {mode} strides {strides:?}"
            );
        }
    }
}
