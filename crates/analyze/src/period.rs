//! Steady-state period proofs for dual-counter AGU request streams.
//!
//! A dual-counter affine AGU is a finite loop nest over constant strides:
//! the burst it issues at temporal step `t` is a pure function of the
//! nest's counter vector at `t`, and the counter vector itself cycles with
//! the nest. The *bank signature* of a step — the per-channel vector of
//! physical banks its words map to under the stream's addressing mode —
//! therefore traces out an eventually-exactly-periodic sequence. This
//! module walks the nest (capped, like [`crate::conflict`]), interns each
//! step's bank signature, and extracts the minimal weak period of the
//! signature stream with [`dm_sim::minimal_period`]. When the whole nest
//! fits under the cap the period is exact by exhaustion; otherwise the
//! proof is marked non-exhaustive and all per-bank counts under-approximate
//! the full nest (which keeps every downstream bound sound — see
//! [`crate::roofline`]).
//!
//! Unlike [`crate::pattern::summarize`], the prover is *total*: zero-trip
//! nests, stride-0 dimensions, sub-word strides and out-of-range addresses
//! all yield a (trivially) periodic proof instead of a refusal — the
//! address arithmetic runs in `i128` and wraps into the scratchpad word
//! space with `rem_euclid`, mirroring how a hardware remapper would treat
//! the low address bits.

use std::collections::HashMap;

use datamaestro::{DesignConfig, RuntimeConfig};
use dm_compiler::CompiledWorkload;
use dm_mem::MemConfig;
use dm_sim::minimal_period;

use crate::diagnostic::{Diagnostic, LintCode};
use crate::pattern::bank_of_word;

/// Enumeration budget for the signature walk; matches the conflict
/// analyzer's cap so both analyses degrade together on huge nests.
const WALK_CAP: u64 = 1 << 22;

/// Proof that one port's request stream is periodic, with its exact
/// per-period accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortPeriodProof {
    /// Stream name (from the design).
    pub name: String,
    /// Total temporal steps of the nest (may exceed `walked`).
    pub steps: u64,
    /// Minimal weak period of the bank-signature stream, in temporal
    /// steps. Exact for the walked prefix; exact for the whole nest when
    /// `exhaustive`.
    pub period: u64,
    /// `true` when the whole nest was enumerated (`walked == steps`).
    pub exhaustive: bool,
    /// Temporal steps actually enumerated (`min(steps, WALK_CAP)`).
    pub walked: u64,
    /// Words requested per temporal step (the channel count).
    pub channels: u64,
    /// Requests per bank over the walked prefix (length = bank count).
    pub per_bank_walked: Vec<u64>,
    /// Requests per bank within the first period (length = bank count).
    pub per_bank_per_period: Vec<u64>,
}

impl PortPeriodProof {
    /// Total requests issued within one period (`channels × period` for a
    /// fully walked period).
    #[must_use]
    pub fn requests_per_period(&self) -> u64 {
        self.per_bank_per_period.iter().sum()
    }
}

/// Periodicity proof for all four ports of a compiled program, with the
/// joint fire period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramPeriodProof {
    /// Per-port proofs in `[A, B, C, OUT]` order.
    pub ports: Vec<PortPeriodProof>,
    /// PE fires per output-tile step (C/OUT advance once per `k_steps`).
    pub k_steps: u64,
    /// Joint period of the four request streams, in PE fires:
    /// `lcm(P_A, P_B, k·P_C, k·P_OUT)` (saturating at `u64::MAX`).
    pub fire_period: u64,
    /// `true` when every port proof is exhaustive.
    pub exhaustive: bool,
}

/// Proves the request stream of one port periodic.
///
/// Total over all runtime configurations: degenerate nests (zero-trip
/// bounds, stride 0, single-iteration loops) produce a trivially periodic
/// proof. Dimension-count mismatches are tolerated by treating missing
/// strides as `0`.
///
/// # Errors
///
/// Returns `DM-CONFIG` only when the addressing mode is illegal for the
/// memory geometry or the temporal bound product overflows `u64`.
pub fn prove_port(
    design: &DesignConfig,
    runtime: &RuntimeConfig,
    mem: &MemConfig,
) -> Result<PortPeriodProof, Diagnostic> {
    let name = design.name().to_owned();
    let Some(group) = runtime.addressing_mode.checked_group_banks(mem.num_banks()) else {
        return Err(Diagnostic::error(
            LintCode::Config,
            name,
            format!(
                "addressing mode {} is illegal for {} banks",
                runtime.addressing_mode,
                mem.num_banks()
            ),
        ));
    };
    let Some(steps) = runtime.checked_total_temporal_steps() else {
        return Err(Diagnostic::error(
            LintCode::Config,
            name,
            "temporal bound product overflows u64 (pattern too large)".to_owned(),
        ));
    };

    let g = group as u64;
    let rows = mem.rows_per_bank() as u64;
    let group_words = g * rows;
    let word = mem.bank_width_bytes() as u64;
    let capacity_words = i128::from(mem.capacity_bytes() / word);

    // Per-channel byte offsets: the spatial mixed-radix enumeration of
    // `SpatialAgu`, made total (missing strides read as 0, zero bounds
    // yield zero channels).
    let bounds = design.spatial_bounds();
    let channels: usize = bounds.iter().product();
    let offsets: Vec<i128> = (0..channels)
        .map(|c| {
            let mut rem = c;
            let mut offset = 0i128;
            for (d, &bound) in bounds.iter().enumerate() {
                let digit = (rem % bound) as i128;
                rem /= bound;
                offset += digit * i128::from(runtime.spatial_strides.get(d).copied().unwrap_or(0));
            }
            offset
        })
        .collect();

    let mut per_bank_walked = vec![0u64; mem.num_banks()];
    let per_bank_per_period = vec![0u64; mem.num_banks()];
    if steps == 0 || channels == 0 {
        // Zero-trip nest: the empty stream is trivially 1-periodic.
        return Ok(PortPeriodProof {
            name,
            steps,
            period: 1,
            exhaustive: true,
            walked: steps.min(WALK_CAP),
            channels: channels as u64,
            per_bank_walked,
            per_bank_per_period,
        });
    }

    // Walk the nest, interning each step's bank signature. The signature is
    // a pure function of the temporal byte offset `q`, so repeated offsets
    // (stride-0 dimensions, revisiting nests) are memoized.
    let walked = steps.min(WALK_CAP);
    let mut walker = ByteNestWalker::new(&runtime.temporal_bounds, &runtime.temporal_strides);
    let mut sig_of_offset: HashMap<i128, u32> = HashMap::new();
    let mut intern: HashMap<Vec<u64>, u32> = HashMap::new();
    let mut sig_banks: Vec<Vec<u64>> = Vec::new();
    let mut ids: Vec<u32> = Vec::with_capacity(walked as usize);
    let base = i128::from(runtime.base);
    for _ in 0..walked {
        let q = base + walker.offset();
        let id = *sig_of_offset.entry(q).or_insert_with(|| {
            let sig: Vec<u64> = offsets
                .iter()
                .map(|&o| {
                    let w = (q + o)
                        .div_euclid(i128::from(word))
                        .rem_euclid(capacity_words);
                    bank_of_word(w as u64, g, group_words)
                })
                .collect();
            *intern.entry(sig.clone()).or_insert_with(|| {
                sig_banks.push(sig);
                (sig_banks.len() - 1) as u32
            })
        });
        ids.push(id);
        walker.step();
    }

    let period = minimal_period(&ids);
    let mut per_bank_per_period = per_bank_per_period;
    for (i, &id) in ids.iter().enumerate() {
        for &b in &sig_banks[id as usize] {
            per_bank_walked[b as usize] += 1;
            if (i as u64) < period {
                per_bank_per_period[b as usize] += 1;
            }
        }
    }

    Ok(PortPeriodProof {
        name,
        steps,
        period,
        exhaustive: walked == steps,
        walked,
        channels: channels as u64,
        per_bank_walked,
        per_bank_per_period,
    })
}

/// Proves all four port streams of a compiled program periodic and
/// combines them into the joint fire period.
///
/// # Errors
///
/// Collects the per-port `DM-CONFIG` diagnostics of every port that
/// cannot be proven (see [`prove_port`]).
pub fn prove_program(
    program: &CompiledWorkload,
    mem: &MemConfig,
) -> Result<ProgramPeriodProof, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut ports = Vec::with_capacity(4);
    for plan in [&program.a, &program.b, &program.c, &program.out] {
        match prove_port(&plan.design, &plan.runtime, mem) {
            Ok(proof) => ports.push(proof),
            Err(d) => diags.push(d),
        }
    }
    if !diags.is_empty() {
        return Err(diags);
    }
    // A and B advance one temporal step per PE fire; C and OUT advance
    // once per `k_steps` fires, which stretches their periods by `k`.
    let k = u128::from(program.k_steps.max(1));
    let joint = [
        u128::from(ports[0].period),
        u128::from(ports[1].period),
        k * u128::from(ports[2].period),
        k * u128::from(ports[3].period),
    ]
    .into_iter()
    .fold(1u128, lcm_u128);
    let fire_period = u64::try_from(joint).unwrap_or(u64::MAX);
    let exhaustive = ports.iter().all(|p| p.exhaustive);
    Ok(ProgramPeriodProof {
        ports,
        k_steps: program.k_steps,
        fire_period,
        exhaustive,
    })
}

fn lcm_u128(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    (a / gcd_u128(a, b)).saturating_mul(b)
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Dual-counter walk over a temporal nest in *byte* space with `i128`
/// offsets — the [`crate::conflict`] walker made total (no word conversion,
/// no overflow, zero-trip bounds simply never step).
struct ByteNestWalker {
    bounds: Vec<u64>,
    strides: Vec<i128>,
    indices: Vec<u64>,
    offsets: Vec<i128>,
}

impl ByteNestWalker {
    fn new(bounds: &[u64], strides: &[i64]) -> Self {
        let strides = (0..bounds.len())
            .map(|d| i128::from(strides.get(d).copied().unwrap_or(0)))
            .collect::<Vec<_>>();
        ByteNestWalker {
            bounds: bounds.to_vec(),
            strides,
            indices: vec![0; bounds.len()],
            offsets: vec![0; bounds.len()],
        }
    }

    fn offset(&self) -> i128 {
        self.offsets.iter().sum()
    }

    fn step(&mut self) {
        for d in 0..self.bounds.len() {
            self.indices[d] += 1;
            if self.indices[d] < self.bounds[d] {
                self.offsets[d] += self.strides[d];
                return;
            }
            self.indices[d] = 0;
            self.offsets[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamaestro::StreamerMode;
    use dm_mem::AddressingMode;

    fn mem() -> MemConfig {
        MemConfig::new(8, 8, 64).unwrap()
    }

    fn design(spatial: &[usize]) -> DesignConfig {
        DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds(spatial.iter().copied())
            .temporal_dims(3)
            .build()
            .unwrap()
    }

    fn prove(rt: &RuntimeConfig) -> PortPeriodProof {
        prove_port(&design(&[8]), rt, &mem()).unwrap()
    }

    #[test]
    fn unit_stride_stream_has_the_bank_cycle_period() {
        // Burst of 8 consecutive words advancing 64 bytes (8 words) per
        // step under FIMA(8): channel `c` always lands on bank `c`, so
        // every step carries the same signature — period 1.
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([512], [64])
            .spatial_strides([8])
            .build();
        let p = prove(&rt);
        assert_eq!(p.steps, 512);
        assert!(p.exhaustive);
        assert_eq!(p.channels, 8);
        // Every step touches each bank exactly once.
        assert_eq!(p.period, 1);
        assert_eq!(p.per_bank_per_period, vec![1; 8]);
        assert_eq!(p.per_bank_walked, vec![512; 8]);
    }

    #[test]
    fn strided_stream_rotates_through_banks_periodically() {
        // One channel advancing one word per step under FIMA(8): the bank
        // rotates 0,1,…,7 within a row then repeats → period 8.
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([256], [8])
            .spatial_strides([0])
            .build();
        let design = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([1])
            .temporal_dims(3)
            .build()
            .unwrap();
        let p = prove_port(&design, &rt, &mem()).unwrap();
        assert_eq!(p.period, 8);
        assert_eq!(p.requests_per_period(), 8);
        assert_eq!(p.per_bank_per_period, vec![1; 8]);
    }

    #[test]
    fn zero_trip_nest_is_trivially_periodic() {
        let rt = RuntimeConfig {
            temporal_bounds: vec![0, 4],
            temporal_strides: vec![64, 512],
            ..RuntimeConfig::builder().spatial_strides([8]).build()
        };
        let p = prove(&rt);
        assert_eq!(p.steps, 0);
        assert_eq!(p.period, 1);
        assert!(p.exhaustive);
        assert_eq!(p.requests_per_period(), 0);
        assert!(p.per_bank_walked.iter().all(|&c| c == 0));
    }

    #[test]
    fn stride_zero_nest_repeats_one_signature() {
        // Stride 0: every step re-reads the same burst → period 1.
        let rt = RuntimeConfig::builder()
            .base(128)
            .temporal([64], [0])
            .spatial_strides([8])
            .build();
        let p = prove(&rt);
        assert_eq!(p.period, 1);
        assert_eq!(p.per_bank_walked.iter().sum::<u64>(), 64 * 8);
    }

    #[test]
    fn single_iteration_outer_loop_is_inner_period() {
        // Outer bound 1 adds nothing: period equals the inner loop's.
        let inner = RuntimeConfig::builder()
            .base(0)
            .temporal([64], [8])
            .spatial_strides([0])
            .build();
        let outer = RuntimeConfig::builder()
            .base(0)
            .temporal([64, 1], [8, 0])
            .spatial_strides([0])
            .build();
        let d = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([1])
            .temporal_dims(3)
            .build()
            .unwrap();
        let pi = prove_port(&d, &inner, &mem()).unwrap();
        let po = prove_port(&d, &outer, &mem()).unwrap();
        assert_eq!(pi.period, po.period);
        assert_eq!(pi.per_bank_per_period, po.per_bank_per_period);
    }

    #[test]
    fn mismatched_stride_dims_are_padded_not_rejected() {
        // Fewer strides than bounds / spatial dims: missing strides are 0.
        let rt = RuntimeConfig {
            temporal_bounds: vec![4, 4],
            temporal_strides: vec![8],
            spatial_strides: vec![],
            ..RuntimeConfig::builder().build()
        };
        let p = prove(&rt);
        assert_eq!(p.steps, 16);
        assert_eq!(p.period, 4, "outer dim (stride 0) contributes nothing");
    }

    #[test]
    fn out_of_range_addresses_wrap_instead_of_refusing() {
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([1 << 16], [64])
            .spatial_strides([8])
            .build();
        // Footprint far exceeds the 4 KiB scratchpad; the prover wraps.
        let p = prove(&rt);
        assert!(p.exhaustive);
        assert_eq!(p.per_bank_walked.iter().sum::<u64>(), (1 << 16) * 8);
    }

    #[test]
    fn illegal_mode_is_a_config_diagnostic() {
        let rt = RuntimeConfig::builder()
            .temporal([4], [64])
            .spatial_strides([8])
            .addressing_mode(AddressingMode::GroupedInterleaved { group_banks: 3 })
            .build();
        let err = prove_port(&design(&[8]), &rt, &mem()).unwrap_err();
        assert_eq!(err.code, LintCode::Config);
    }

    #[test]
    fn period_divides_counts_consistently() {
        // The per-period counts replicated over the walk never exceed the
        // walked totals (weak-period prefix property).
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([48, 3], [8, 1024])
            .spatial_strides([0])
            .build();
        let d = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([1])
            .temporal_dims(3)
            .build()
            .unwrap();
        let p = prove_port(&d, &rt, &mem()).unwrap();
        assert!(p.period <= p.walked);
        let reps = p.walked / p.period;
        for (b, &per) in p.per_bank_per_period.iter().enumerate() {
            assert!(per * reps <= p.per_bank_walked[b] + p.requests_per_period());
        }
    }
}
