//! Mode-mismatch advisor: ranks legal addressing modes by predicted
//! conflict pressure for one stream's spatial burst shape.
//!
//! The score of a mode is the number of channel pairs satisfying the
//! necessary collision conditions of [`crate::conflict`] (delta ≡ 0 mod g
//! and |delta| < group span). A mode is only *placement-compatible* when
//! reinterpreting the stream's existing footprint hull under it does not
//! spill the stream onto banks owned by concurrently active streams — a
//! mode switch rewires the bit permutation, it does not move the data.

use dm_mem::{AddressingMode, MemConfig};

use crate::pattern::{BankSet, StreamSummary};

/// One ranked addressing mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeScore {
    /// The candidate mode.
    pub mode: AddressingMode,
    /// Channel pairs that could collide per burst under this mode.
    pub candidate_pairs: usize,
    /// Banks the stream's footprint hull would occupy under this mode.
    pub banks: BankSet,
}

/// Every mode legal for the geometry: NIMA, GIMA for each power-of-two
/// divisor, FIMA (deduplicated — FIMA ≡ GIMA(num_banks), NIMA ≡ GIMA(1)).
#[must_use]
pub fn legal_modes(num_banks: usize) -> Vec<AddressingMode> {
    let mut modes = vec![AddressingMode::NonInterleaved];
    let mut g = 2;
    while g < num_banks {
        modes.push(AddressingMode::GroupedInterleaved { group_banks: g });
        g *= 2;
    }
    if num_banks > 1 {
        modes.push(AddressingMode::FullyInterleaved);
    }
    modes
}

/// Scores one mode for a stream: candidate collision pairs plus the bank
/// set its footprint hull would occupy.
#[must_use]
pub fn score_mode(s: &StreamSummary, mode: AddressingMode, mem: &MemConfig) -> ModeScore {
    let g = mode.group_banks(mem.num_banks()) as i64;
    let span = g * mem.rows_per_bank() as i64;
    let mut candidate_pairs = 0;
    for i in 0..s.offsets_words.len() {
        for j in i + 1..s.offsets_words.len() {
            let d = s.offsets_words[j] - s.offsets_words[i];
            if d.rem_euclid(g) == 0 && d.abs() < span {
                candidate_pairs += 1;
            }
        }
    }
    let (lo, hi) = s.word_hull;
    let banks = crate::pattern::hull_bank_set(lo, hi, g as u64, mem);
    ModeScore {
        mode,
        candidate_pairs,
        banks,
    }
}

/// Ranks all legal modes for a stream, best (fewest candidate pairs) first.
/// Ties prefer larger groups (more interleaving ⇒ more burst parallelism),
/// with the stream's current mode winning ties at equal group size.
///
/// `occupied_by_others` is the union of the bank sets of the concurrently
/// active streams; modes whose reinterpreted footprint intersects it are
/// excluded as placement-incompatible. Pass an empty set for a stream
/// analyzed in isolation.
#[must_use]
pub fn rank_modes(
    s: &StreamSummary,
    mem: &MemConfig,
    occupied_by_others: &BankSet,
) -> Vec<ModeScore> {
    let mut scores: Vec<ModeScore> = legal_modes(mem.num_banks())
        .into_iter()
        .map(|mode| score_mode(s, mode, mem))
        .filter(|score| score.mode == s.mode || !score.banks.intersects(occupied_by_others))
        .collect();
    scores.sort_by_key(|score| {
        (
            score.candidate_pairs,
            std::cmp::Reverse(score.mode.group_banks(mem.num_banks())),
            score.mode != s.mode,
        )
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::summarize;
    use datamaestro::{DesignConfig, RuntimeConfig, StreamerMode};

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 1024).unwrap()
    }

    fn summary(mode: AddressingMode) -> StreamSummary {
        let design = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([8])
            .build()
            .unwrap();
        let rt = RuntimeConfig::builder()
            .temporal([8], [64])
            .spatial_strides([8])
            .addressing_mode(mode)
            .build();
        summarize(&design, &rt, &mem()).unwrap()
    }

    #[test]
    fn legal_modes_cover_all_divisors() {
        let modes = legal_modes(32);
        assert_eq!(modes.len(), 6, "NIMA, GIMA(2,4,8,16), FIMA");
        assert_eq!(modes[0], AddressingMode::NonInterleaved);
        assert_eq!(modes[5], AddressingMode::FullyInterleaved);
    }

    #[test]
    fn fima_beats_nima_for_consecutive_bursts() {
        let s = summary(AddressingMode::NonInterleaved);
        let ranked = rank_modes(&s, &mem(), &BankSet::empty(32));
        assert_eq!(ranked[0].mode, AddressingMode::FullyInterleaved);
        assert_eq!(ranked[0].candidate_pairs, 0);
        let nima = ranked
            .iter()
            .find(|m| m.mode == AddressingMode::NonInterleaved)
            .unwrap();
        assert_eq!(nima.candidate_pairs, 28);
    }

    #[test]
    fn placement_incompatible_modes_are_excluded() {
        let s = summary(AddressingMode::GroupedInterleaved { group_banks: 8 });
        // Other streams own banks 8..32: wider interleavings would spill.
        let mut occupied = BankSet::empty(32);
        for b in 8..32 {
            occupied.insert(b);
        }
        let ranked = rank_modes(&s, &mem(), &occupied);
        assert!(ranked
            .iter()
            .all(|m| m.mode == s.mode || !m.banks.intersects(&occupied)));
        assert!(!ranked
            .iter()
            .any(|m| m.mode == AddressingMode::FullyInterleaved));
        assert_eq!(ranked[0].mode, s.mode, "GIMA(8) already optimal");
    }

    #[test]
    fn current_mode_is_always_listed() {
        let s = summary(AddressingMode::NonInterleaved);
        let mut occupied = BankSet::empty(32);
        for b in 0..32 {
            occupied.insert(b);
        }
        let ranked = rank_modes(&s, &mem(), &occupied);
        assert!(ranked.iter().any(|m| m.mode == s.mode));
    }
}
