//! Mode-mismatch advisor: ranks legal addressing modes by *predicted
//! utilization* for one stream's access pattern.
//!
//! The primary score of a mode is its roofline term: the hottest-bank
//! request count over a (capped) walk of the stream's temporal nest — a
//! bank grants one request per cycle, so this is a sound cycle lower
//! bound and the quantity the static performance prover ([`crate::roofline`])
//! minimizes. The per-burst candidate-pair count of [`crate::conflict`]
//! (delta ≡ 0 mod g and |delta| < group span) breaks ties. A mode is only
//! *placement-compatible* when reinterpreting the stream's existing
//! footprint hull under it does not spill the stream onto banks owned by
//! concurrently active streams — a mode switch rewires the bit
//! permutation, it does not move the data.

use dm_mem::{AddressingMode, MemConfig};

use crate::pattern::{bank_of_word, BankSet, StreamSummary};

/// Walk budget for the predicted-cycles score. Smaller than the conflict
/// analyzer's cap (the advisor scores every legal mode of every stream);
/// all modes of one stream walk the same step count, so the ranking stays
/// an apples-to-apples comparison even when capped.
const SCORE_WALK_CAP: u64 = 1 << 16;

/// One ranked addressing mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeScore {
    /// The candidate mode.
    pub mode: AddressingMode,
    /// Hottest-bank request count over the walked nest prefix — a sound
    /// cycle lower bound for serving the stream under this mode.
    pub predicted_cycles: u64,
    /// Temporal steps the prediction walked (`min(steps, cap)`).
    pub walked_steps: u64,
    /// Channel pairs that could collide per burst under this mode.
    pub candidate_pairs: usize,
    /// Banks the stream's footprint hull would occupy under this mode.
    pub banks: BankSet,
}

/// Every mode legal for the geometry: NIMA, GIMA for each power-of-two
/// divisor, FIMA (deduplicated — FIMA ≡ GIMA(num_banks), NIMA ≡ GIMA(1)).
#[must_use]
pub fn legal_modes(num_banks: usize) -> Vec<AddressingMode> {
    let mut modes = vec![AddressingMode::NonInterleaved];
    let mut g = 2;
    while g < num_banks {
        modes.push(AddressingMode::GroupedInterleaved { group_banks: g });
        g *= 2;
    }
    if num_banks > 1 {
        modes.push(AddressingMode::FullyInterleaved);
    }
    modes
}

/// Scores one mode for a stream: the predicted cycle lower bound
/// (hottest-bank load over the walked nest), the per-burst candidate
/// collision pairs, and the bank set its footprint hull would occupy.
#[must_use]
pub fn score_mode(s: &StreamSummary, mode: AddressingMode, mem: &MemConfig) -> ModeScore {
    let g = mode.group_banks(mem.num_banks()) as i64;
    let span = g * mem.rows_per_bank() as i64;
    let mut candidate_pairs = 0;
    for i in 0..s.offsets_words.len() {
        for j in i + 1..s.offsets_words.len() {
            let d = s.offsets_words[j] - s.offsets_words[i];
            if d.rem_euclid(g) == 0 && d.abs() < span {
                candidate_pairs += 1;
            }
        }
    }
    let (predicted_cycles, walked_steps) = predicted_cycles(s, g as u64, mem);
    let (lo, hi) = s.word_hull;
    let banks = crate::pattern::hull_bank_set(lo, hi, g as u64, mem);
    ModeScore {
        mode,
        predicted_cycles,
        walked_steps,
        candidate_pairs,
        banks,
    }
}

/// The roofline bank term of the stream's nest reinterpreted under
/// GIMA(g): hottest-bank request count over the walked (capped) prefix.
fn predicted_cycles(s: &StreamSummary, g: u64, mem: &MemConfig) -> (u64, u64) {
    let group_words = g * mem.rows_per_bank() as u64;
    let mut per_bank = vec![0u64; mem.num_banks()];
    let mut indices = vec![0u64; s.temporal_bounds.len()];
    let mut offsets = vec![0i64; s.temporal_bounds.len()];
    let walked = s.steps.min(SCORE_WALK_CAP);
    for _ in 0..walked {
        let q = s.base_word as i64 + offsets.iter().sum::<i64>();
        for &o in &s.offsets_words {
            let bank = bank_of_word((q + o) as u64, g, group_words) as usize;
            per_bank[bank % mem.num_banks()] += 1;
        }
        for d in 0..indices.len() {
            indices[d] += 1;
            if indices[d] < s.temporal_bounds[d] {
                offsets[d] += s.temporal_strides_words[d];
                break;
            }
            indices[d] = 0;
            offsets[d] = 0;
        }
    }
    (per_bank.into_iter().max().unwrap_or(0), walked)
}

/// Ranks all legal modes for a stream, best (lowest predicted cycle bound)
/// first; equal bounds fall back to fewest candidate pairs, then larger
/// groups (more interleaving ⇒ more burst parallelism), with the stream's
/// current mode winning exact ties.
///
/// `occupied_by_others` is the union of the bank sets of the concurrently
/// active streams; modes whose reinterpreted footprint intersects it are
/// excluded as placement-incompatible. Pass an empty set for a stream
/// analyzed in isolation.
#[must_use]
pub fn rank_modes(
    s: &StreamSummary,
    mem: &MemConfig,
    occupied_by_others: &BankSet,
) -> Vec<ModeScore> {
    let mut scores: Vec<ModeScore> = legal_modes(mem.num_banks())
        .into_iter()
        .map(|mode| score_mode(s, mode, mem))
        .filter(|score| score.mode == s.mode || !score.banks.intersects(occupied_by_others))
        .collect();
    scores.sort_by_key(|score| {
        (
            score.predicted_cycles,
            score.candidate_pairs,
            std::cmp::Reverse(score.mode.group_banks(mem.num_banks())),
            score.mode != s.mode,
        )
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::summarize;
    use datamaestro::{DesignConfig, RuntimeConfig, StreamerMode};

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 1024).unwrap()
    }

    fn summary(mode: AddressingMode) -> StreamSummary {
        let design = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([8])
            .build()
            .unwrap();
        let rt = RuntimeConfig::builder()
            .temporal([8], [64])
            .spatial_strides([8])
            .addressing_mode(mode)
            .build();
        summarize(&design, &rt, &mem()).unwrap()
    }

    #[test]
    fn legal_modes_cover_all_divisors() {
        let modes = legal_modes(32);
        assert_eq!(modes.len(), 6, "NIMA, GIMA(2,4,8,16), FIMA");
        assert_eq!(modes[0], AddressingMode::NonInterleaved);
        assert_eq!(modes[5], AddressingMode::FullyInterleaved);
    }

    #[test]
    fn fima_beats_nima_for_consecutive_bursts() {
        let s = summary(AddressingMode::NonInterleaved);
        let ranked = rank_modes(&s, &mem(), &BankSet::empty(32));
        assert_eq!(ranked[0].mode, AddressingMode::FullyInterleaved);
        assert_eq!(ranked[0].candidate_pairs, 0);
        // 64 distinct words spread over 32 banks: 2 requests per bank.
        assert_eq!(ranked[0].predicted_cycles, 2);
        assert_eq!(ranked[0].walked_steps, 8);
        let nima = ranked
            .iter()
            .find(|m| m.mode == AddressingMode::NonInterleaved)
            .unwrap();
        assert_eq!(nima.candidate_pairs, 28);
        // All 64 words land in one bank under NIMA: bank-serial.
        assert_eq!(nima.predicted_cycles, 64);
        // Predicted cycles are monotone in interleaving for this pattern.
        for pair in ranked.windows(2) {
            assert!(pair[0].predicted_cycles <= pair[1].predicted_cycles);
        }
    }

    #[test]
    fn placement_incompatible_modes_are_excluded() {
        let s = summary(AddressingMode::GroupedInterleaved { group_banks: 8 });
        // Other streams own banks 8..32: wider interleavings would spill.
        let mut occupied = BankSet::empty(32);
        for b in 8..32 {
            occupied.insert(b);
        }
        let ranked = rank_modes(&s, &mem(), &occupied);
        assert!(ranked
            .iter()
            .all(|m| m.mode == s.mode || !m.banks.intersects(&occupied)));
        assert!(!ranked
            .iter()
            .any(|m| m.mode == AddressingMode::FullyInterleaved));
        assert_eq!(ranked[0].mode, s.mode, "GIMA(8) already optimal");
    }

    #[test]
    fn current_mode_is_always_listed() {
        let s = summary(AddressingMode::NonInterleaved);
        let mut occupied = BankSet::empty(32);
        for b in 0..32 {
            occupied.insert(b);
        }
        let ranked = rank_modes(&s, &mem(), &occupied);
        assert!(ranked.iter().any(|m| m.mode == s.mode));
    }
}
