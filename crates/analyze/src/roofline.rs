//! Sound utilization rooflines from the period proofs.
//!
//! From a lowered program and memory geometry — no simulation — this
//! module derives a proven *upper bound* on the PE utilization the
//! simulator can observe, together with the predicted dominant bottleneck
//! expressed in the critical-path taxonomy ([`dm_sim::CritClass`]) so the
//! static prediction is directly diffable against the dynamic blame and
//! critical-path profilers.
//!
//! ## Soundness argument
//!
//! Observed utilization is `ideal / (prepass + compute)` with
//! `ideal = total_steps`. Every term below *under-approximates* the
//! corresponding real cycle count, so
//! `bound = ideal / (prepass_lb + compute_lb) ≥ observed` always:
//!
//! * **pe-issue**: the datapath fires at most once per cycle, so
//!   `compute ≥ total_steps`.
//! * **bank-conflict**: a bank grants at most one request per cycle, so
//!   `compute ≥ max_b Σ_ports requests_to_bank_b` (counts from the period
//!   proofs; a capped walk under-counts, which only weakens the term).
//! * **memory-latency / agu-throughput** (per read port): with
//!   fine-grained prefetch a port holds at most `D` bursts in flight or
//!   buffered (`D` = data-FIFO depth), so burst `i` cannot deliver before
//!   burst `i−D` popped plus the read latency:
//!   `compute ≥ ⌊(steps−1)/D⌋·L`. Without fine-grained prefetch the
//!   coarse sync gate reopens only on the cycle after the previous burst
//!   popped, so consecutive pops are at least `L+1` apart:
//!   `compute ≥ (steps−1)·(L+1)`. The coupled term is classified
//!   `memory-latency` when `L > 1` (the stalled cycles have a request in
//!   flight) and `agu-throughput` at `L == 1` (the single lost cycle per
//!   step is the gate's round trip, observed as a gate/AGU leaf).
//! * **prepass**: the copy engine has 4 read and 4 write ports and one
//!   grant per bank per cycle, so each plan costs at least
//!   `max(⌈R/4⌉, ⌈W/4⌉, max_b reads_b, max_b writes_b)` cycles.
//!
//! The predicted bottleneck is the class of the largest compute term,
//! with ties resolved toward `pe-issue`, then `bank-conflict` — matching
//! how the dynamic profilers fold overlapping causes.

use dm_compiler::{CompiledWorkload, CopyPlan};
use dm_mem::MemConfig;
use dm_sim::CritClass;

use crate::diagnostic::{Diagnostic, LintCode};
use crate::pattern::bank_of_word;
use crate::period::{prove_program, ProgramPeriodProof};

/// Proven-utilization threshold below which `DM-PERF-BOUND` is emitted.
const NEAR_PEAK: f64 = 0.99;

/// One per-port latency-chain term of the roofline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTerm {
    /// Port name (from the design).
    pub port: String,
    /// Cycle lower bound contributed by the port's latency chain.
    pub cycles: u64,
    /// Taxonomy class this term predicts when dominant.
    pub class: CritClass,
}

/// A proven performance prediction for one lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Ideal (stall-free) compute cycles: `total_steps`.
    pub ideal: u64,
    /// Lower bound on the pre-pass cycles.
    pub prepass_lb: u64,
    /// Lower bound on the compute-phase cycles (max over roofline terms).
    pub compute_lb: u64,
    /// Hottest-bank request count (the bank-conflict term).
    pub bank_term: u64,
    /// Per-read-port latency-chain terms.
    pub latency_terms: Vec<LatencyTerm>,
    /// Proven upper bound on observed PE utilization.
    pub bound: f64,
    /// Predicted dominant bottleneck (compute-phase taxonomy).
    pub bottleneck: CritClass,
    /// The underlying periodicity proof.
    pub period: ProgramPeriodProof,
}

/// Derives the sound utilization roofline for a lowered program at the
/// given read latency.
///
/// # Errors
///
/// Propagates the period prover's `DM-CONFIG` diagnostics (illegal
/// addressing mode, overflowing nest).
pub fn predict(
    program: &CompiledWorkload,
    mem: &MemConfig,
    read_latency: u64,
) -> Result<Prediction, Vec<Diagnostic>> {
    let period = prove_program(program, mem)?;
    let ideal = program.total_steps();
    let latency = read_latency.max(1);

    // Bank-conflict term: total requests per bank, all four ports summed.
    let mut per_bank = vec![0u64; mem.num_banks()];
    for port in &period.ports {
        for (b, &count) in port.per_bank_walked.iter().enumerate() {
            per_bank[b] += count;
        }
    }
    let bank_term = per_bank.iter().copied().max().unwrap_or(0);

    // Latency chains for the three read ports (A, B advance per fire;
    // C per tile — either way `steps` is the port's own pop count).
    let mut latency_terms = Vec::new();
    for (plan, proof) in [
        (&program.a, &period.ports[0]),
        (&program.b, &period.ports[1]),
        (&program.c, &period.ports[2]),
    ] {
        let steps = proof.steps;
        let (cycles, class) = if plan.design.fine_grained_prefetch() {
            let depth = plan.design.data_buffer_depth().max(1) as u64;
            (
                steps.saturating_sub(1) / depth * latency,
                CritClass::MemLatency,
            )
        } else {
            let class = if latency > 1 {
                CritClass::MemLatency
            } else {
                CritClass::AguThroughput
            };
            (steps.saturating_sub(1).saturating_mul(latency + 1), class)
        };
        latency_terms.push(LatencyTerm {
            port: proof.name.clone(),
            cycles,
            class,
        });
    }

    // compute_lb = max over terms; bottleneck = class of the first term
    // attaining it, in priority order pe-issue, bank-conflict, latency.
    let mut compute_lb = ideal;
    let mut bottleneck = CritClass::PeIssue;
    if bank_term > compute_lb {
        compute_lb = bank_term;
        bottleneck = CritClass::BankConflict;
    }
    for term in &latency_terms {
        if term.cycles > compute_lb {
            compute_lb = term.cycles;
            bottleneck = term.class;
        }
    }

    let prepass_lb = program
        .prepasses
        .iter()
        .map(|plan| prepass_lower_bound(plan, mem))
        .sum();

    let denom = prepass_lb + compute_lb;
    let bound = if denom == 0 {
        1.0
    } else {
        ideal as f64 / denom as f64
    };

    Ok(Prediction {
        ideal,
        prepass_lb,
        compute_lb,
        bank_term,
        latency_terms,
        bound,
        bottleneck,
        period,
    })
}

/// Sound cycle lower bound for one copy-engine pre-pass (see the module
/// doc for the argument).
#[must_use]
pub fn prepass_lower_bound(plan: &CopyPlan, mem: &MemConfig) -> u64 {
    let word = mem.bank_width_bytes() as u64;
    let rows = mem.rows_per_bank() as u64;
    let capacity_words = mem.capacity_bytes() / word;
    let load = |addrs: &mut dyn Iterator<Item = u64>, g: u64| -> u64 {
        let mut per_bank = vec![0u64; mem.num_banks()];
        for addr in addrs {
            let w = (addr / word) % capacity_words.max(1);
            per_bank[bank_of_word(w, g, g * rows) as usize] += 1;
        }
        per_bank.into_iter().max().unwrap_or(0)
    };
    let g_read = plan
        .read_mode
        .checked_group_banks(mem.num_banks())
        .unwrap_or(1) as u64;
    let g_write = plan
        .write_mode
        .checked_group_banks(mem.num_banks())
        .unwrap_or(1) as u64;
    let reads = plan.reads.len() as u64;
    let writes = plan.writes.len() as u64;
    let read_bank = load(&mut plan.reads.iter().copied(), g_read);
    let write_bank = load(&mut plan.writes.iter().map(|(a, _)| *a), g_write);
    reads
        .div_ceil(4)
        .max(writes.div_ceil(4))
        .max(read_bank)
        .max(write_bank)
}

/// Renders the prediction as `DM-PERF-*` diagnostics for `dm-lint`:
/// an info when the proven roofline is below near-peak (the configuration
/// *cannot* reach full utilization, with the predicted bottleneck), and an
/// info when the period proof had to cap its walk.
#[must_use]
pub fn perf_diagnostics(prediction: &Prediction) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if prediction.bound < NEAR_PEAK {
        out.push(Diagnostic::info(
            LintCode::PerfBound,
            "system",
            format!(
                "proven utilization roofline {:.3} is below near-peak \
                 (predicted bottleneck: {})",
                prediction.bound,
                prediction.bottleneck.label()
            ),
        ));
    }
    if !prediction.period.exhaustive {
        out.push(Diagnostic::info(
            LintCode::PerfPeriod,
            "system",
            format!(
                "steady-state period proof is non-exhaustive (walk capped; \
                 fire period {} proven for the walked prefix only)",
                prediction.period.fire_period
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_compiler::{compile, BufferDepths, FeatureSet};
    use dm_workloads::{ConvSpec, GemmSpec, WorkloadData};

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 4096).unwrap()
    }

    fn gemm(step: usize) -> Prediction {
        let data = WorkloadData::generate(GemmSpec::new(32, 16, 24).into(), 11);
        let features = FeatureSet::ablation_step(step);
        let program = compile(&data, &features, &mem(), true, BufferDepths::default()).unwrap();
        predict(&program, &mem(), 1).unwrap()
    }

    #[test]
    fn full_feature_gemm_is_predicted_near_peak() {
        let p = gemm(6);
        assert_eq!(p.ideal, 24);
        assert_eq!(p.prepass_lb, 0, "no pre-passes at step 6");
        assert!(
            p.bound >= NEAR_PEAK,
            "full features must be predicted near-peak, got {}",
            p.bound
        );
        assert_eq!(p.bottleneck, CritClass::PeIssue);
        assert!(perf_diagnostics(&p).is_empty());
    }

    #[test]
    fn early_steps_are_bounded_below_peak() {
        // Step 1 lacks on-the-fly transform features: pre-passes and/or a
        // coupled access-execute pipe cap the utilization strictly.
        let p = gemm(1);
        assert!(p.bound < 1.0, "step 1 bound {}", p.bound);
        let diags = perf_diagnostics(&p);
        assert!(diags.iter().any(|d| d.code == LintCode::PerfBound));
    }

    #[test]
    fn bound_is_monotone_in_latency() {
        let data = WorkloadData::generate(GemmSpec::new(32, 16, 24).into(), 11);
        let program = compile(
            &data,
            &FeatureSet::ablation_step(2),
            &mem(),
            true,
            BufferDepths::default(),
        )
        .unwrap();
        let b1 = predict(&program, &mem(), 1).unwrap().bound;
        let b4 = predict(&program, &mem(), 4).unwrap().bound;
        let b16 = predict(&program, &mem(), 16).unwrap().bound;
        assert!(b1 >= b4 && b4 >= b16, "{b1} {b4} {b16}");
    }

    #[test]
    fn conv_predictions_are_finite_and_positive() {
        let data = WorkloadData::generate(ConvSpec::new(14, 14, 8, 8, 3, 3, 1).into(), 7);
        for step in 1..=6 {
            let features = FeatureSet::ablation_step(step);
            let program = compile(&data, &features, &mem(), true, BufferDepths::default()).unwrap();
            let p = predict(&program, &mem(), 4).unwrap();
            assert!(p.bound > 0.0 && p.bound <= 1.0, "step {step}: {}", p.bound);
            assert!(p.compute_lb >= p.ideal);
        }
    }

    #[test]
    fn prepass_bound_counts_the_hottest_bank() {
        use dm_compiler::WriteSource;
        use dm_mem::AddressingMode;
        let plan = CopyPlan {
            name: "t".into(),
            read_mode: AddressingMode::NonInterleaved,
            write_mode: AddressingMode::FullyInterleaved,
            // 8 reads, all in bank 0 under NIMA (first rows of bank 0).
            reads: (0..8u64).map(|i| i * 8).collect(),
            writes: (0..4)
                .map(|i| (4096 + i * 8, WriteSource::Word(i as usize)))
                .collect(),
        };
        let lb = prepass_lower_bound(&plan, &mem());
        assert_eq!(lb, 8, "bank-serial reads dominate ⌈8/4⌉ and ⌈4/4⌉");
    }
}
