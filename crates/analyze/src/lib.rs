//! # dm-analyze — static configuration analysis for DataMaestro systems
//!
//! Proves properties of a streamer/memory configuration *before* any
//! simulation runs:
//!
//! * **bank-conflict freedom** ([`conflict`]) — from the GIMA bit
//!   permutation alone: channel pairs whose word delta is not a multiple
//!   of the group size, or spans at least a whole bank group, can never
//!   collide. The full-feature compiler placements satisfy this for every
//!   operand, which is the paper's Fig. 7a ⑤→⑥ conflict elimination as a
//!   checkable theorem instead of an empirical observation;
//! * **footprint safety** ([`pattern`]) — exact min/max address intervals
//!   per stream via interval arithmetic over the affine nest (checked,
//!   overflow-aware), giving out-of-bounds and read/write-overlap hazards;
//! * **deadlock freedom** ([`graph`]) — zero-capacity FIFOs, finite credit
//!   cycles, and token supply/demand imbalances in the channel graph;
//! * **mode advice** ([`advisor`]) — ranks the legal addressing modes of
//!   the geometry by predicted utilization (hottest-bank load over the
//!   walked nest), restricted to modes that are placement-compatible with
//!   the concurrently active streams;
//! * **performance proofs** ([`period`], [`roofline`]) — proves each
//!   port's request stream periodic with its exact period and per-bank
//!   per-period request counts, then derives a sound FIFO-depth- and
//!   conflict-adjusted roofline whose min over ports is a proven upper
//!   bound on PE utilization, classified in the critical-path taxonomy
//!   (`dm-predict`, validated by the differential soundness suite).
//!
//! The [`system`] module ties these together for a [`dm_compiler`]
//! program; the `dm-lint` binary exposes them on the command line with
//! JSON output and a `--deny-warnings` CI gate.
//!
//! ## Soundness
//!
//! The conflict-freedom verdict is *sound*: when the analyzer reports
//! [`BurstVerdict::ConflictFree`] for all streams, pairwise-disjoint bank
//! sets, and no pre-passes, the simulator observes exactly zero conflicts
//! (streams stay in lock-step: by induction, no request ever loses an
//! arbitration round, so bursts never smear across cycles). Conversely
//! "conflicting" is conservative — candidates that survive the capped nest
//! walk may still be innocent, so the analyzer separately reports
//! `guaranteed_min`/`worst_case_max` bounds on the event count.

pub mod advisor;
pub mod conflict;
pub mod diagnostic;
pub mod fixtures;
pub mod graph;
pub mod pattern;
pub mod period;
pub mod roofline;
pub mod system;

pub use advisor::{legal_modes, rank_modes, score_mode, ModeScore};
pub use conflict::{intra_burst, BurstVerdict, CandidatePair};
pub use diagnostic::{Diagnostic, LintCode, Report, Severity};
pub use graph::{system_graph, ChannelGraph};
pub use pattern::{summarize, BankSet, StreamSummary};
pub use period::{prove_port, prove_program, PortPeriodProof, ProgramPeriodProof};
pub use roofline::{perf_diagnostics, predict, prepass_lower_bound, LatencyTerm, Prediction};
pub use system::{analyze_program, analyze_streams, Analysis, StreamAnalysis, StreamInput};
