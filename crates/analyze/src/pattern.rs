//! Pattern summarization: checked footprints and physical bank sets.
//!
//! Everything downstream (conflict prediction, hazard detection, the mode
//! advisor) works on a [`StreamSummary`]: the stream's loop nest reduced to
//! word-granular quantities plus its *exact* byte footprint hull and the
//! exact set of banks the hull can touch under the stream's addressing
//! mode. All arithmetic is checked (`i128` accumulation), mirroring the
//! `PatternTooLarge` / `PatternOutOfBounds` machinery of the dynamic
//! binder but without constructing an AGU (which asserts instead of
//! reporting).

use datamaestro::agu::SpatialAgu;
use datamaestro::{DesignConfig, RuntimeConfig};
use dm_mem::{AddressingMode, MemConfig};

use crate::diagnostic::{Diagnostic, LintCode};

/// A set of physical banks, stored as a bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankSet {
    bits: Vec<u64>,
    num_banks: usize,
}

impl BankSet {
    /// An empty set over `num_banks` banks.
    #[must_use]
    pub fn empty(num_banks: usize) -> Self {
        BankSet {
            bits: vec![0; num_banks.div_ceil(64)],
            num_banks,
        }
    }

    /// Inserts one bank.
    pub fn insert(&mut self, bank: usize) {
        assert!(bank < self.num_banks, "bank {bank} out of range");
        self.bits[bank / 64] |= 1 << (bank % 64);
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, bank: usize) -> bool {
        bank < self.num_banks && self.bits[bank / 64] & (1 << (bank % 64)) != 0
    }

    /// Number of banks in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no bank is in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// `true` when the two sets share at least one bank.
    #[must_use]
    pub fn intersects(&self, other: &BankSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(&a, &b)| a & b != 0)
    }

    /// The banks in ascending order (for messages).
    #[must_use]
    pub fn iter_banks(&self) -> Vec<usize> {
        (0..self.num_banks).filter(|&b| self.contains(b)).collect()
    }
}

impl std::fmt::Display for BankSet {
    /// Compact range display, e.g. `{0-7, 24}`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let banks = self.iter_banks();
        write!(f, "{{")?;
        let mut i = 0;
        let mut first = true;
        while i < banks.len() {
            let start = banks[i];
            let mut end = start;
            while i + 1 < banks.len() && banks[i + 1] == end + 1 {
                i += 1;
                end = banks[i];
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if end > start {
                write!(f, "{start}-{end}")?;
            } else {
                write!(f, "{start}")?;
            }
            i += 1;
        }
        write!(f, "}}")
    }
}

/// A stream's loop nest reduced to word-granular quantities plus exact
/// footprint information. Produced by [`summarize`].
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Stream name (from the design).
    pub name: String,
    /// Addressing mode the stream runs under.
    pub mode: AddressingMode,
    /// Effective banks per group under `mode` (`N_BG`).
    pub group: u64,
    /// Words per group (`group × rows_per_bank`) — the span after which the
    /// bit permutation advances to the next bank group.
    pub group_words: u64,
    /// Per-channel spatial offsets, in words.
    pub offsets_words: Vec<i64>,
    /// Temporal bounds, innermost first.
    pub temporal_bounds: Vec<u64>,
    /// Temporal strides in words, innermost first.
    pub temporal_strides_words: Vec<i64>,
    /// Base address, in words.
    pub base_word: u64,
    /// Total temporal steps (bursts) of the nest.
    pub steps: u64,
    /// Inclusive word-index hull `[min, max]` the pattern can touch.
    pub word_hull: (u64, u64),
    /// Exact set of banks any address inside the hull maps to.
    pub banks: BankSet,
    /// Inclusive physical row hull `[min, max]` over all touched banks.
    pub row_hull: (u64, u64),
}

/// Summarizes one stream, performing the checked structural / alignment /
/// bounds validation. On failure returns the diagnostics explaining why;
/// the stream is then excluded from the deeper analyses.
///
/// # Errors
///
/// Returns `DM-CONFIG` for structural mismatches and overflowing nests,
/// `DM-UNALIGNED` for sub-word bases/strides/offsets, `DM-OOB` when the
/// footprint hull leaves the scratchpad address space, and `DM-CONFIG` if
/// the addressing mode is illegal for the geometry.
pub fn summarize(
    design: &DesignConfig,
    runtime: &RuntimeConfig,
    mem: &MemConfig,
) -> Result<StreamSummary, Vec<Diagnostic>> {
    let name = design.name().to_owned();
    if let Err(e) = runtime.validate(design) {
        return Err(vec![Diagnostic::error(
            LintCode::Config,
            name,
            format!("runtime configuration rejected: {e}"),
        )]);
    }
    let word = mem.bank_width_bytes() as u64;
    let Some(group) = runtime.addressing_mode.checked_group_banks(mem.num_banks()) else {
        return Err(vec![Diagnostic::error(
            LintCode::Config,
            name,
            format!(
                "addressing mode {} is illegal for {} banks (group must be a \
                 power of two dividing the bank count)",
                runtime.addressing_mode,
                mem.num_banks()
            ),
        )]);
    };

    let mut diags = Vec::new();
    let misaligned = |v: i64| v.rem_euclid(word as i64) != 0;
    if !runtime.base.is_multiple_of(word) {
        diags.push(Diagnostic::error(
            LintCode::Unaligned,
            &name,
            format!(
                "base address {:#x} is not {word}-byte word-aligned",
                runtime.base
            ),
        ));
    }
    if runtime.temporal_strides.iter().copied().any(misaligned) {
        diags.push(Diagnostic::error(
            LintCode::Unaligned,
            &name,
            format!(
                "temporal strides {:?} contain a sub-word stride",
                runtime.temporal_strides
            ),
        ));
    }
    let spatial = SpatialAgu::new(design.spatial_bounds(), &runtime.spatial_strides);
    if spatial.offsets().iter().copied().any(misaligned) {
        diags.push(Diagnostic::error(
            LintCode::Unaligned,
            &name,
            format!(
                "spatial strides {:?} produce a sub-word channel offset",
                runtime.spatial_strides
            ),
        ));
    }
    if !diags.is_empty() {
        return Err(diags);
    }

    let Some(steps) = runtime.checked_total_temporal_steps() else {
        return Err(vec![Diagnostic::error(
            LintCode::Config,
            name,
            "temporal bound product overflows u64 (pattern too large)".to_owned(),
        )]);
    };

    // Checked footprint hull: per-dimension extremes are independent for
    // affine patterns (same math as `TemporalAgu::address_range`, but in
    // i128 so pathological strides report instead of asserting).
    let mut min = i128::from(runtime.base);
    let mut max = i128::from(runtime.base);
    for (&bound, &stride) in runtime
        .temporal_bounds
        .iter()
        .zip(&runtime.temporal_strides)
    {
        let reach = i128::from(stride) * (i128::from(bound) - 1);
        if reach < 0 {
            min += reach;
        } else {
            max += reach;
        }
    }
    let s_min = spatial.offsets().iter().copied().min().unwrap_or(0);
    let s_max = spatial.offsets().iter().copied().max().unwrap_or(0);
    min += i128::from(s_min);
    max += i128::from(s_max) + i128::from(word) - 1;
    let capacity = i128::from(mem.capacity_bytes());
    if min < 0 || max >= capacity {
        return Err(vec![Diagnostic::error(
            LintCode::Oob,
            name,
            format!(
                "pattern footprint [{min}, {max}] leaves the scratchpad \
                 address space [0, {capacity})"
            ),
        )]);
    }

    let min_word = (min as u64) / word;
    let max_word = (max as u64) / word;
    let rows = mem.rows_per_bank() as u64;
    let group_words = group as u64 * rows;
    let (banks, row_hull) = hull_banks_and_rows(min_word, max_word, group as u64, rows, mem);

    Ok(StreamSummary {
        name,
        mode: runtime.addressing_mode,
        group: group as u64,
        group_words,
        offsets_words: spatial.offsets().iter().map(|&o| o / word as i64).collect(),
        temporal_bounds: runtime.temporal_bounds.clone(),
        temporal_strides_words: runtime
            .temporal_strides
            .iter()
            .map(|&s| s / word as i64)
            .collect(),
        base_word: runtime.base / word,
        steps,
        word_hull: (min_word, max_word),
        banks,
        row_hull,
    })
}

/// The exact bank set of an inclusive word-index interval under GIMA(g).
#[must_use]
pub fn hull_bank_set(min_word: u64, max_word: u64, g: u64, mem: &MemConfig) -> BankSet {
    hull_banks_and_rows(min_word, max_word, g, mem.rows_per_bank() as u64, mem).0
}

/// The exact bank set and row hull of a word-index interval under GIMA(g).
///
/// Inside one group, consecutive words round-robin over the group's `g`
/// banks, so an interval piece of length `≥ g` covers the whole group and a
/// shorter piece covers `len` specific banks starting at `start mod g`.
fn hull_banks_and_rows(
    min_word: u64,
    max_word: u64,
    g: u64,
    rows: u64,
    mem: &MemConfig,
) -> (BankSet, (u64, u64)) {
    let group_words = g * rows;
    let mut banks = BankSet::empty(mem.num_banks());
    let mut row_min = u64::MAX;
    let mut row_max = 0u64;
    let first_group = min_word / group_words;
    let last_group = max_word / group_words;
    for group_idx in first_group..=last_group {
        let lo = (group_idx * group_words).max(min_word) - group_idx * group_words;
        let hi = ((group_idx + 1) * group_words - 1).min(max_word) - group_idx * group_words;
        row_min = row_min.min(lo / g);
        row_max = row_max.max(hi / g);
        let len = hi - lo + 1;
        if len >= g {
            for b in 0..g {
                banks.insert((group_idx * g + b) as usize);
            }
        } else {
            for w in lo..=hi {
                banks.insert((group_idx * g + w % g) as usize);
            }
        }
    }
    (banks, (row_min, row_max))
}

/// The physical bank of a word index under GIMA(g) — the analyzer's model
/// of the remapper's bit permutation (`AddressRemapper::map_word`), checked
/// against the remapper itself by the exhaustive round-trip tests in
/// `dm-mem`.
#[must_use]
pub fn bank_of_word(word: u64, g: u64, group_words: u64) -> u64 {
    (word / group_words) * g + word % g
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamaestro::StreamerMode;
    use dm_mem::{AddressRemapper, AddressingMode};

    fn mem() -> MemConfig {
        MemConfig::new(8, 8, 64).unwrap()
    }

    fn design(spatial: &[usize]) -> DesignConfig {
        DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds(spatial.iter().copied())
            .temporal_dims(3)
            .build()
            .unwrap()
    }

    #[test]
    fn bank_model_matches_remapper_for_every_mode() {
        let mem = mem();
        for mode in [
            AddressingMode::FullyInterleaved,
            AddressingMode::NonInterleaved,
            AddressingMode::GroupedInterleaved { group_banks: 2 },
            AddressingMode::GroupedInterleaved { group_banks: 4 },
        ] {
            let remapper = AddressRemapper::new(&mem, mode).unwrap();
            let g = mode.group_banks(mem.num_banks()) as u64;
            let group_words = g * mem.rows_per_bank() as u64;
            for w in 0..remapper.capacity_words() {
                assert_eq!(
                    bank_of_word(w, g, group_words),
                    remapper.map_word(w).bank as u64,
                    "mode {mode} word {w}"
                );
            }
        }
    }

    #[test]
    fn footprint_hull_is_exact() {
        let rt = RuntimeConfig::builder()
            .base(64)
            .temporal([4, 2], [64, -32])
            .spatial_strides([8])
            .build();
        let s = summarize(&design(&[8]), &rt, &mem()).unwrap();
        // min = 64 - 32 = 32; max = 64 + 3*64 + 7*8 + 7 = 319.
        assert_eq!(s.word_hull, (4, 39));
        assert_eq!(s.steps, 8);
        assert_eq!(s.offsets_words, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn oob_pattern_rejected_with_dm_oob() {
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([1024, 1024], [64, 64])
            .spatial_strides([8])
            .build();
        let diags = summarize(&design(&[8]), &rt, &mem()).unwrap_err();
        assert!(diags.iter().any(|d| d.code == LintCode::Oob), "{diags:?}");
    }

    #[test]
    fn negative_reach_rejected() {
        let rt = RuntimeConfig::builder()
            .base(64)
            .temporal([64], [-64])
            .spatial_strides([8])
            .build();
        let diags = summarize(&design(&[8]), &rt, &mem()).unwrap_err();
        assert!(diags.iter().any(|d| d.code == LintCode::Oob));
    }

    #[test]
    fn misalignment_rejected() {
        let rt = RuntimeConfig::builder()
            .base(4)
            .temporal([2], [64])
            .spatial_strides([8])
            .build();
        let diags = summarize(&design(&[8]), &rt, &mem()).unwrap_err();
        assert!(diags.iter().all(|d| d.code == LintCode::Unaligned));

        let rt = RuntimeConfig::builder()
            .temporal([2], [64])
            .spatial_strides([4])
            .build();
        let diags = summarize(&design(&[8]), &rt, &mem()).unwrap_err();
        assert!(diags.iter().any(|d| d.code == LintCode::Unaligned));
    }

    #[test]
    fn bank_set_matches_brute_force() {
        let mem = mem();
        for (lo, hi, g) in [(0u64, 3u64, 2u64), (60, 200, 4), (100, 101, 8), (5, 511, 1)] {
            let (banks, rows) = hull_banks_and_rows(lo, hi, g, 64, &mem);
            let mut expected = BankSet::empty(8);
            let mut rmin = u64::MAX;
            let mut rmax = 0;
            for w in lo..=hi {
                expected.insert(bank_of_word(w, g, g * 64) as usize);
                let r = (w % (g * 64)) / g;
                rmin = rmin.min(r);
                rmax = rmax.max(r);
            }
            assert_eq!(banks, expected, "lo={lo} hi={hi} g={g}");
            assert_eq!(rows, (rmin, rmax), "lo={lo} hi={hi} g={g}");
        }
    }

    #[test]
    fn bank_set_display_and_ops() {
        let mut s = BankSet::empty(32);
        assert!(s.is_empty());
        for b in [0, 1, 2, 3, 24] {
            s.insert(b);
        }
        assert_eq!(s.to_string(), "{0-3, 24}");
        assert_eq!(s.len(), 5);
        let mut t = BankSet::empty(32);
        t.insert(5);
        assert!(!s.intersects(&t));
        t.insert(24);
        assert!(s.intersects(&t));
    }
}
