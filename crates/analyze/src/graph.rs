//! Channel-graph deadlock analysis.
//!
//! The streamer↔PE system is a token-flow graph: memory feeds each read
//! streamer's address queue and data FIFOs, the PE pops one wide word per
//! port per firing, and the write streamer drains results back to memory.
//! Statically detectable deadlocks:
//!
//! * **zero-capacity edge** — a FIFO on a required path with capacity 0
//!   can never transport a token; the consumer starves on cycle one;
//! * **credit cycle** — a dependency cycle in which every buffer is finite
//!   and at least one has zero capacity can never make progress;
//! * **starved port** — a port whose producer supplies fewer tokens than
//!   the consumer demands stalls the handshake forever once the producer
//!   runs dry (the simulator only discovers this when the cycle budget
//!   blows).
//!
//! The graph is generic so fixtures and future topologies (multi-PE,
//! chained extensions) can reuse the same checks; [`system_graph`]
//! builds the evaluation system's topology from the lowered stream shapes.

use crate::diagnostic::{Diagnostic, LintCode};

/// A node in the channel graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Display name (e.g. `"mem"`, `"A.data"`, `"pe"`).
    pub name: String,
}

/// A directed FIFO edge: tokens flow `from → to` through a buffer of
/// `capacity` entries (`None` = unbounded, e.g. the memory itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// Buffer capacity in tokens; `None` means unbounded.
    pub capacity: Option<u64>,
    /// Label for diagnostics (e.g. `"A.data_fifo"`).
    pub label: String,
}

/// A token-flow graph over streamers, FIFOs, the PE and memory.
#[derive(Debug, Clone, Default)]
pub struct ChannelGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// `(port label, supplied tokens, demanded tokens)` balance entries.
    balances: Vec<(String, u64, u64)>,
}

impl ChannelGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        ChannelGraph::default()
    }

    /// Adds a node, returning its index.
    pub fn node(&mut self, name: impl Into<String>) -> usize {
        self.nodes.push(Node { name: name.into() });
        self.nodes.len() - 1
    }

    /// Adds a FIFO edge.
    pub fn edge(
        &mut self,
        from: usize,
        to: usize,
        capacity: Option<u64>,
        label: impl Into<String>,
    ) {
        assert!(from < self.nodes.len() && to < self.nodes.len());
        self.edges.push(Edge {
            from,
            to,
            capacity,
            label: label.into(),
        });
    }

    /// Records a supply/demand balance for one port.
    pub fn balance(&mut self, label: impl Into<String>, supplied: u64, demanded: u64) {
        self.balances.push((label.into(), supplied, demanded));
    }

    /// Runs all deadlock checks, returning the diagnostics found.
    #[must_use]
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();

        for edge in &self.edges {
            if edge.capacity == Some(0) {
                diags.push(Diagnostic::error(
                    LintCode::Deadlock,
                    &self.nodes[edge.from].name,
                    format!(
                        "FIFO '{}' ({} -> {}) has zero capacity: no token can \
                         ever pass, the consumer deadlocks on the first cycle",
                        edge.label, self.nodes[edge.from].name, self.nodes[edge.to].name
                    ),
                ));
            }
        }

        // Credit cycles: a dependency cycle all of whose edges are finite
        // is suspicious; with a zero-capacity edge it is a guaranteed
        // deadlock (already reported above), otherwise it needs at least
        // one free credit to rotate — report as a warning so the designer
        // confirms the protocol seeds the credit.
        for cycle in self.finite_cycles() {
            let labels: Vec<&str> = cycle
                .iter()
                .map(|&e| self.edges[e].label.as_str())
                .collect();
            let min_cap = cycle
                .iter()
                .filter_map(|&e| self.edges[e].capacity)
                .min()
                .unwrap_or(0);
            if min_cap > 0 {
                diags.push(Diagnostic::warning(
                    LintCode::Deadlock,
                    "system",
                    format!(
                        "credit cycle through [{}]: every buffer is finite; \
                         progress requires a free credit at start-up",
                        labels.join(", ")
                    ),
                ));
            }
        }

        for (label, supplied, demanded) in &self.balances {
            if supplied != demanded {
                diags.push(Diagnostic::error(
                    LintCode::Deadlock,
                    label.clone(),
                    format!(
                        "port supplies {supplied} tokens but the consumer \
                         demands {demanded}: the handshake {} forever",
                        if supplied < demanded {
                            "starves"
                        } else {
                            "backs up"
                        }
                    ),
                ));
            }
        }
        diags
    }

    /// Simple cycles consisting only of finite-capacity edges (found via
    /// DFS on the finite-edge subgraph; the graphs here are tiny).
    fn finite_cycles(&self) -> Vec<Vec<usize>> {
        let finite: Vec<usize> = (0..self.edges.len())
            .filter(|&e| self.edges[e].capacity.is_some())
            .collect();
        let mut cycles = Vec::new();
        // For each node, DFS over finite edges looking for a path back.
        for start in 0..self.nodes.len() {
            let mut stack = vec![(start, Vec::new())];
            while let Some((node, path)) = stack.pop() {
                for &e in &finite {
                    if self.edges[e].from != node {
                        continue;
                    }
                    if path.contains(&e) {
                        continue;
                    }
                    let to = self.edges[e].to;
                    let mut next = path.clone();
                    next.push(e);
                    if to == start {
                        cycles.push(next);
                    } else if next.len() < self.edges.len() {
                        stack.push((to, next));
                    }
                }
            }
        }
        // Deduplicate rotations: keep cycles sorted-unique by edge set.
        let mut seen = std::collections::HashSet::new();
        cycles.retain(|c| {
            let mut key = c.clone();
            key.sort_unstable();
            seen.insert(key)
        });
        cycles
    }
}

/// Builds the evaluation system's channel graph from per-stream FIFO
/// depths and token totals.
///
/// `streams` is `(name, is_read, addr_depth, data_depth, supplied)` and
/// `demands` is `(port label, demanded)` matched by position.
#[must_use]
pub fn system_graph(
    streams: &[(&str, bool, u64, u64, u64)],
    demands: &[(String, u64)],
) -> ChannelGraph {
    let mut g = ChannelGraph::new();
    let mem = g.node("mem");
    let pe = g.node("pe");
    for (i, &(name, is_read, addr_depth, data_depth, supplied)) in streams.iter().enumerate() {
        let streamer = g.node(name);
        if is_read {
            g.edge(
                mem,
                streamer,
                Some(addr_depth),
                format!("{name}.addr_queue"),
            );
            g.edge(streamer, pe, Some(data_depth), format!("{name}.data_fifo"));
        } else {
            g.edge(pe, streamer, Some(data_depth), format!("{name}.write_fifo"));
            g.edge(streamer, mem, None, format!("{name}.drain"));
        }
        if let Some((label, demanded)) = demands.get(i) {
            g.balance(label.clone(), supplied, *demanded);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    #[test]
    fn zero_capacity_fifo_is_a_deadlock_error() {
        let mut g = ChannelGraph::new();
        let mem = g.node("mem");
        let pe = g.node("pe");
        let a = g.node("A");
        g.edge(mem, a, Some(8), "A.addr_queue");
        g.edge(a, pe, Some(0), "A.data_fifo");
        let diags = g.analyze();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::Deadlock);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("A.data_fifo"));
    }

    #[test]
    fn healthy_dag_is_clean() {
        let g = system_graph(
            &[
                ("A", true, 8, 8, 64),
                ("B", true, 8, 8, 64),
                ("OUT", false, 8, 2, 8),
            ],
            &[
                ("A".to_owned(), 64),
                ("B".to_owned(), 64),
                ("OUT".to_owned(), 8),
            ],
        );
        assert!(g.analyze().is_empty());
    }

    #[test]
    fn starved_port_is_reported() {
        let g = system_graph(&[("A", true, 8, 8, 48)], &[("A".to_owned(), 64)]);
        let diags = g.analyze();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("starves"));
        assert_eq!(diags[0].code, LintCode::Deadlock);
    }

    #[test]
    fn finite_credit_cycle_warns() {
        let mut g = ChannelGraph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.edge(a, b, Some(2), "fwd");
        g.edge(b, a, Some(1), "credit");
        let diags = g.analyze();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("credit cycle"));
    }

    #[test]
    fn zero_capacity_cycle_is_error_not_duplicate_warning() {
        let mut g = ChannelGraph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.edge(a, b, Some(2), "fwd");
        g.edge(b, a, Some(0), "credit");
        let diags = g.analyze();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
    }
}
