//! `dm-lint` — static configuration linter for the DataMaestro system.
//!
//! Compiles the committed workload suites onto the paper's evaluation
//! geometry and runs the full static analysis (bank conflicts, footprint
//! bounds, hazards, deadlock) on each program, **without simulating**.
//!
//! ```text
//! dm-lint [--suite fig7|table3|kernels|all] [--quick] [--json]
//!         [--deny-warnings] [--demo oob|zero-fifo|nima-clash]
//! ```
//!
//! Exit status: 0 = clean (per the gate), 1 = findings failed the gate,
//! 2 = usage error.

use dm_analyze::{analyze_program, analyze_streams, fixtures, Report, Severity, StreamInput};
use dm_compiler::{compile, BufferDepths, FeatureSet};
use dm_mem::MemConfig;
use dm_sim::JsonValue;
use dm_workloads::{synthetic_suite, table3_models, Workload, WorkloadData};

struct Args {
    json: bool,
    deny_warnings: bool,
    quick: bool,
    suite: String,
    demo: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        json: false,
        deny_warnings: false,
        quick: false,
        suite: "all".to_owned(),
        demo: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--deny-warnings" => parsed.deny_warnings = true,
            "--quick" => parsed.quick = true,
            "--suite" => {
                parsed.suite = args.next().unwrap_or_else(|| usage("--suite needs a name"));
                if !["fig7", "table3", "kernels", "all"].contains(&parsed.suite.as_str()) {
                    usage("--suite must be fig7, table3, kernels or all");
                }
            }
            "--demo" => {
                parsed.demo = Some(args.next().unwrap_or_else(|| usage("--demo needs a name")));
            }
            other => usage(&format!("unknown option: {other}")),
        }
    }
    parsed
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: dm-lint [--suite fig7|table3|kernels|all] [--quick] [--json] \
         [--deny-warnings] [--demo oob|zero-fifo|nima-clash]"
    );
    std::process::exit(2);
}

/// The committed workloads of one suite, labelled.
fn suite_workloads(suite: &str, quick: bool) -> Vec<(String, Workload)> {
    let mut out = Vec::new();
    if suite == "fig7" || suite == "all" {
        for (i, w) in synthetic_suite().into_iter().enumerate() {
            if !quick || i % 5 == 0 {
                out.push((format!("fig7[{i}] {w}"), w));
            }
        }
    }
    if suite == "table3" || suite == "all" {
        for model in table3_models() {
            for layer in &model.layers {
                out.push((format!("{}/{}", model.name, layer.name), layer.workload));
            }
        }
    }
    if suite == "kernels" || suite == "all" {
        for (name, w) in dm_bench_kernels() {
            out.push((format!("kernel/{name}"), w));
        }
    }
    out
}

/// The Fig. 10 representative kernels, duplicated here to keep dm-analyze
/// below dm-bench in the crate graph (dm-bench depends on this linter's
/// library for its `--lint` gate).
fn dm_bench_kernels() -> Vec<(&'static str, Workload)> {
    use dm_workloads::{ConvSpec, GemmSpec};
    vec![
        ("gemm-64", GemmSpec::new(64, 64, 64).into()),
        ("gemm-projection", GemmSpec::new(128, 768, 768).into()),
        ("attention", GemmSpec::new(128, 128, 64).into()),
        ("tgemm-64", GemmSpec::transposed(64, 64, 64).into()),
        ("conv3x3", ConvSpec::new(58, 58, 64, 64, 3, 3, 1).into()),
        ("conv3x3-s2", ConvSpec::new(58, 58, 64, 128, 3, 3, 2).into()),
        ("conv1x1-s2", ConvSpec::new(56, 56, 64, 128, 1, 1, 2).into()),
        ("conv-stem", ConvSpec::new(58, 58, 8, 64, 3, 3, 1).into()),
    ]
}

fn demo_report(name: &str) -> Report {
    let mem_default = MemConfig::default();
    match name {
        "oob" => {
            let (design, runtime, mem) = fixtures::oob_pattern();
            analyze_streams(
                &[StreamInput {
                    design: &design,
                    runtime: &runtime,
                }],
                &mem,
                0,
            )
            .report
        }
        "zero-fifo" => {
            let mut report = Report::new();
            report.extend(fixtures::zero_capacity_fifo().analyze());
            report
        }
        "nima-clash" => {
            let (design, runtime, _) = fixtures::nima_gemm_clash();
            analyze_streams(
                &[StreamInput {
                    design: &design,
                    runtime: &runtime,
                }],
                &mem_default,
                0,
            )
            .report
        }
        other => usage(&format!("unknown demo fixture: {other}")),
    }
}

fn main() {
    let args = parse_args();
    let mem = MemConfig::default();

    let (report, proven_free, analyzed) = if let Some(demo) = &args.demo {
        (demo_report(demo), 0usize, 1usize)
    } else {
        let mut report = Report::new();
        let mut proven_free = 0;
        let workloads = suite_workloads(&args.suite, args.quick);
        let analyzed = workloads.len();
        for (label, workload) in &workloads {
            let data = WorkloadData::generate(*workload, 0);
            match compile(
                &data,
                &FeatureSet::full(),
                &mem,
                true,
                BufferDepths::default(),
            ) {
                Ok(program) => {
                    let analysis = analyze_program(&program, &mem);
                    proven_free += usize::from(analysis.conflict_free);
                    for mut diag in analysis.report.diagnostics {
                        diag.component = format!("{label}: {}", diag.component);
                        report.push(diag);
                    }
                }
                Err(e) => {
                    report.push(dm_analyze::Diagnostic::error(
                        dm_analyze::LintCode::Config,
                        label.clone(),
                        format!("does not compile onto the evaluation system: {e}"),
                    ));
                }
            }
        }
        (report, proven_free, analyzed)
    };

    // Demo fixtures are known-bad by construction, so they always gate at
    // warning level — otherwise the warning-only `nima-clash` would "pass".
    let passed = report.passes(args.deny_warnings || args.demo.is_some());
    if args.json {
        let value = JsonValue::object([
            ("analyzed".to_owned(), JsonValue::from(analyzed as u64)),
            (
                "proven_conflict_free".to_owned(),
                JsonValue::from(proven_free as u64),
            ),
            ("passed".to_owned(), JsonValue::Bool(passed)),
            ("diagnostics".to_owned(), report.to_json()),
        ]);
        println!("{}", value.to_json());
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
        }
        println!(
            "dm-lint: {analyzed} configuration(s) analyzed, {proven_free} proven \
             conflict-free; {} error(s), {} warning(s), {} note(s) — {}",
            report.count(Severity::Error),
            report.count(Severity::Warning),
            report.count(Severity::Info),
            if passed { "PASS" } else { "FAIL" }
        );
    }
    std::process::exit(i32::from(!passed));
}
