//! Typed diagnostics with stable lint codes.
//!
//! Every analysis in this crate reports its findings as [`Diagnostic`]s
//! collected into a [`Report`]. Codes are stable strings (`DM-*`) so CI
//! jobs, editors and humans can grep/gate on them; severities follow the
//! usual compiler convention:
//!
//! * [`Severity::Error`] — the configuration is wrong (out of bounds,
//!   misaligned, structurally deadlocked) and *will* misbehave.
//! * [`Severity::Warning`] — legal but predictably slow or risky (avoidable
//!   bank conflicts, mismatched addressing mode, potential hazards).
//! * [`Severity::Info`] — a property worth knowing that needs no action
//!   (e.g. conflicts that no legal addressing mode can remove).

use dm_sim::JsonValue;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: no action needed.
    Info,
    /// Legal but predictably suboptimal or risky.
    Warning,
    /// The configuration is incorrect and must not be run.
    Error,
}

impl Severity {
    /// Lowercase label used in human and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable lint codes. The string form (`DM-…`) is the public contract:
/// tests and CI gates match on it, so variants may be added but existing
/// strings never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// Bank conflicts are possible or guaranteed for this configuration.
    BankConflict,
    /// A different legal addressing mode would reduce predicted conflicts.
    ModeMismatch,
    /// The access pattern leaves the scratchpad address space.
    Oob,
    /// A base address, stride or spatial offset is not word-aligned.
    Unaligned,
    /// Structural configuration error (dimension mismatch, overflow, …).
    Config,
    /// A read footprint overlaps a concurrently active write footprint.
    RawHazard,
    /// The channel graph can deadlock (zero capacity, starved port, cycle).
    Deadlock,
    /// The proven utilization roofline is below the near-peak threshold.
    PerfBound,
    /// The steady-state period proof is non-exhaustive (walk was capped).
    PerfPeriod,
}

impl LintCode {
    /// The stable code string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::BankConflict => "DM-BANK-CONFLICT",
            LintCode::ModeMismatch => "DM-MODE-MISMATCH",
            LintCode::Oob => "DM-OOB",
            LintCode::Unaligned => "DM-UNALIGNED",
            LintCode::Config => "DM-CONFIG",
            LintCode::RawHazard => "DM-RAW-HAZARD",
            LintCode::Deadlock => "DM-DEADLOCK",
            LintCode::PerfBound => "DM-PERF-BOUND",
            LintCode::PerfPeriod => "DM-PERF-PERIOD",
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: severity, stable code, the component it concerns (a stream
/// name like `"A"`, or `"system"`), and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad the finding is.
    pub severity: Severity,
    /// Stable lint code.
    pub code: LintCode,
    /// Which component (stream name or `"system"`) the finding concerns.
    pub component: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Convenience constructor for an error.
    #[must_use]
    pub fn error(code: LintCode, component: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            component: component.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for a warning.
    #[must_use]
    pub fn warning(
        code: LintCode,
        component: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            component: component.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for an informational note.
    #[must_use]
    pub fn info(code: LintCode, component: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            code,
            component: component.into(),
            message: message.into(),
        }
    }

    /// JSON form (used by `dm-lint --json`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "severity".to_owned(),
                JsonValue::from(self.severity.label()),
            ),
            ("code".to_owned(), JsonValue::from(self.code.as_str())),
            ("component".to_owned(), JsonValue::from(&*self.component)),
            ("message".to_owned(), JsonValue::from(&*self.message)),
        ])
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.component, self.message
        )
    }
}

/// A collection of diagnostics with gate/accounting helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Appends many findings.
    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// Number of findings at the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when the report contains at least one error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// `true` if a diagnostic with this code is present.
    #[must_use]
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The exit gate: passes when there are no errors, and (with
    /// `deny_warnings`) no warnings either. Infos never fail the gate.
    #[must_use]
    pub fn passes(&self, deny_warnings: bool) -> bool {
        !(self.has_errors() || deny_warnings && self.count(Severity::Warning) > 0)
    }

    /// JSON form: an array of diagnostic objects.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(LintCode::BankConflict.as_str(), "DM-BANK-CONFLICT");
        assert_eq!(LintCode::ModeMismatch.as_str(), "DM-MODE-MISMATCH");
        assert_eq!(LintCode::Oob.as_str(), "DM-OOB");
        assert_eq!(LintCode::Unaligned.as_str(), "DM-UNALIGNED");
        assert_eq!(LintCode::Config.as_str(), "DM-CONFIG");
        assert_eq!(LintCode::RawHazard.as_str(), "DM-RAW-HAZARD");
        assert_eq!(LintCode::Deadlock.as_str(), "DM-DEADLOCK");
        assert_eq!(LintCode::PerfBound.as_str(), "DM-PERF-BOUND");
        assert_eq!(LintCode::PerfPeriod.as_str(), "DM-PERF-PERIOD");
    }

    #[test]
    fn gate_semantics() {
        let mut report = Report::new();
        assert!(report.passes(true));
        report.push(Diagnostic::info(LintCode::BankConflict, "A", "note"));
        assert!(report.passes(true), "infos never fail the gate");
        report.push(Diagnostic::warning(LintCode::ModeMismatch, "A", "w"));
        assert!(report.passes(false));
        assert!(!report.passes(true));
        report.push(Diagnostic::error(LintCode::Oob, "B", "e"));
        assert!(!report.passes(false));
        assert!(report.has_errors());
        assert!(report.has_code(LintCode::Oob));
        assert!(!report.has_code(LintCode::Deadlock));
    }

    #[test]
    fn display_is_compiler_style() {
        let d = Diagnostic::error(LintCode::Oob, "A", "max address 4096 beyond capacity 2048");
        assert_eq!(
            d.to_string(),
            "error[DM-OOB] A: max address 4096 beyond capacity 2048"
        );
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
