//! Whole-system analysis: ties the per-stream analyses together for a
//! compiled workload and renders the verdict + diagnostics.

use dm_compiler::CompiledWorkload;
use dm_mem::MemConfig;

use crate::advisor;
use crate::conflict::{intra_burst, BurstVerdict};
use crate::diagnostic::{Diagnostic, LintCode, Report};
use crate::graph::system_graph;
use crate::pattern::{summarize, BankSet, StreamSummary};

/// Result of analyzing one stream.
#[derive(Debug, Clone)]
pub struct StreamAnalysis {
    /// The summarized pattern (absent when summarization itself errored).
    pub summary: Option<StreamSummary>,
    /// Intra-burst conflict verdict (absent when summarization errored).
    pub verdict: Option<BurstVerdict>,
}

/// Result of analyzing a full system configuration.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings.
    pub report: Report,
    /// Per-stream results, in `streams` order.
    pub streams: Vec<StreamAnalysis>,
    /// `true` when the analyzer *proves* no bank conflict can ever occur.
    pub conflict_free: bool,
    /// At least this many conflict events must occur (0 when none are
    /// guaranteed — which does not imply freedom).
    pub guaranteed_min_conflicts: u64,
    /// No more than this many conflict events can occur, from arbitration
    /// fairness (each request loses at most `requesters − 1` rounds).
    /// `None` when a count overflowed.
    pub worst_case_max_conflicts: Option<u64>,
}

/// One stream of a system under analysis.
pub struct StreamInput<'a> {
    /// The stream's design-time configuration.
    pub design: &'a datamaestro::DesignConfig,
    /// The stream's runtime configuration.
    pub runtime: &'a datamaestro::RuntimeConfig,
}

/// Analyzes a set of concurrently active streams against a memory
/// geometry. `prepasses` is the number of copy-engine pre-passes that will
/// run (their traffic shares the banks; a nonzero count forfeits the
/// conflict-freedom proof).
#[must_use]
pub fn analyze_streams(streams: &[StreamInput<'_>], mem: &MemConfig, prepasses: usize) -> Analysis {
    let mut report = Report::new();
    let mut analyses = Vec::new();

    for stream in streams {
        match summarize(stream.design, stream.runtime, mem) {
            Ok(summary) => {
                let verdict = intra_burst(&summary);
                analyses.push(StreamAnalysis {
                    summary: Some(summary),
                    verdict: Some(verdict),
                });
            }
            Err(diags) => {
                report.extend(diags);
                analyses.push(StreamAnalysis {
                    summary: None,
                    verdict: None,
                });
            }
        }
    }

    // Inter-stream bank sharing: conflict-freedom requires pairwise
    // disjoint bank sets (a shared bank can always be hit by two decoupled
    // streams in the same cycle).
    let mut disjoint = true;
    for i in 0..analyses.len() {
        for j in i + 1..analyses.len() {
            let (Some(a), Some(b)) = (&analyses[i].summary, &analyses[j].summary) else {
                continue;
            };
            if a.banks.intersects(&b.banks) {
                disjoint = false;
                report.push(Diagnostic::warning(
                    LintCode::BankConflict,
                    format!("{}+{}", a.name, b.name),
                    format!(
                        "streams '{}' ({}, banks {}) and '{}' ({}, banks {}) \
                         share banks: inter-stream conflicts are possible; \
                         disjoint GIMA bank groups (addressing-mode \
                         switching) would eliminate them",
                        a.name, a.mode, a.banks, b.name, b.mode, b.banks
                    ),
                ));
            }
        }
    }

    // Read-vs-write footprint hazards. Same-mode streams compare exact
    // linear hulls; cross-mode comparisons fall back to physical bank +
    // row hulls (conservative, hence a warning).
    for i in 0..analyses.len() {
        for j in 0..analyses.len() {
            if i == j {
                continue;
            }
            let (Some(r), Some(w)) = (&analyses[i].summary, &analyses[j].summary) else {
                continue;
            };
            let reads = streams[i].design.mode() == datamaestro::StreamerMode::Read;
            let writes = streams[j].design.mode() == datamaestro::StreamerMode::Write;
            if !(reads && writes) {
                continue;
            }
            let overlap = if r.mode == w.mode {
                r.word_hull.0 <= w.word_hull.1 && w.word_hull.0 <= r.word_hull.1
            } else {
                r.banks.intersects(&w.banks)
                    && r.row_hull.0 <= w.row_hull.1
                    && w.row_hull.0 <= r.row_hull.1
            };
            if overlap {
                report.push(Diagnostic::warning(
                    LintCode::RawHazard,
                    format!("{}+{}", r.name, w.name),
                    format!(
                        "read stream '{}' footprint overlaps write stream \
                         '{}': the streams are decoupled, so reads may \
                         observe partially written data (RAW/WAR hazard)",
                        r.name, w.name
                    ),
                ));
            }
        }
    }

    // Intra-burst conflicts + mode advisor.
    for (idx, analysis) in analyses.iter().enumerate() {
        let (Some(summary), Some(verdict)) = (&analysis.summary, &analysis.verdict) else {
            continue;
        };
        let BurstVerdict::Conflicting {
            pairs, first_step, ..
        } = verdict
        else {
            continue;
        };
        let mut occupied = BankSet::empty(mem.num_banks());
        for (other_idx, other) in analyses.iter().enumerate() {
            if other_idx == idx {
                continue;
            }
            if let Some(other_summary) = &other.summary {
                for bank in other_summary.banks.iter_banks() {
                    occupied.insert(bank);
                }
            }
        }
        let ranked = advisor::rank_modes(summary, mem, &occupied);
        let best = &ranked[0];
        let current = ranked
            .iter()
            .find(|m| m.mode == summary.mode)
            .expect("current mode is always listed");
        let certainty = if first_step.is_some() {
            "collide"
        } else {
            "may collide"
        };
        if best.mode != summary.mode && best.predicted_cycles < current.predicted_cycles {
            report.push(Diagnostic::warning(
                LintCode::BankConflict,
                &summary.name,
                format!(
                    "{} channel pairs {certainty} on a bank every burst \
                     under {} (e.g. channels {:?} at word delta {})",
                    pairs.len(),
                    summary.mode,
                    pairs[0].channels,
                    pairs[0].delta_words,
                ),
            ));
            report.push(Diagnostic::warning(
                LintCode::ModeMismatch,
                &summary.name,
                format!(
                    "addressing mode {} is predicted to need {} cycles on \
                     its hottest bank over {} steps; {} would need {} \
                     (placement compatible, predicted utilization {:.2}x)",
                    summary.mode,
                    current.predicted_cycles,
                    current.walked_steps,
                    best.mode,
                    best.predicted_cycles,
                    current.predicted_cycles as f64 / best.predicted_cycles.max(1) as f64,
                ),
            ));
        } else {
            report.push(Diagnostic::info(
                LintCode::BankConflict,
                &summary.name,
                format!(
                    "{} channel pairs {certainty} on a bank per burst under \
                     {}; no placement-compatible addressing mode predicts a \
                     lower cycle bound — conflicts are unavoidable for this \
                     pattern",
                    pairs.len(),
                    summary.mode
                ),
            ));
        }
    }

    if prepasses > 0 {
        report.push(Diagnostic::info(
            LintCode::BankConflict,
            "system",
            format!(
                "{prepasses} copy-engine pre-pass(es) share the banks with \
                 their own traffic; conflict-freedom is not claimed for \
                 pre-pass phases"
            ),
        ));
    }

    // Verdict + bounds.
    let all_streams_free = analyses.iter().all(|a| {
        a.verdict
            .as_ref()
            .is_some_and(BurstVerdict::is_conflict_free)
    });
    let analyzable = analyses.iter().all(|a| a.summary.is_some());
    let conflict_free = analyzable && all_streams_free && disjoint && prepasses == 0;

    let mut guaranteed = 0u64;
    let mut any_first = false;
    for analysis in &analyses {
        if let Some(BurstVerdict::Conflicting {
            first_step: Some(_),
            events_at_first,
            ..
        }) = &analysis.verdict
        {
            any_first = true;
            guaranteed += events_at_first;
        }
    }
    // The per-stream lock-step argument only composes when streams cannot
    // perturb each other (disjoint banks); otherwise a single event is
    // still guaranteed: before any first conflict everything is lock-step,
    // so the earliest predicted collision must materialize.
    let guaranteed_min_conflicts = if conflict_free {
        0
    } else if disjoint {
        guaranteed
    } else {
        u64::from(any_first)
    };

    // Fairness bound: per round-robin arbitration a pending request loses
    // at most (total requester channels − 1) grants before winning.
    let total_channels: u64 = streams.iter().map(|s| s.design.num_channels() as u64).sum();
    let mut worst: Option<u64> = Some(0);
    if conflict_free {
        // No request can ever lose.
    } else {
        for analysis in &analyses {
            let Some(summary) = &analysis.summary else {
                worst = None;
                break;
            };
            let requests = summary
                .steps
                .checked_mul(summary.offsets_words.len() as u64);
            worst = worst.zip(requests).and_then(|(acc, reqs)| {
                reqs.checked_mul(total_channels.saturating_sub(1))
                    .and_then(|w| acc.checked_add(w))
            });
        }
    }

    Analysis {
        report,
        streams: analyses,
        conflict_free,
        guaranteed_min_conflicts,
        worst_case_max_conflicts: worst,
    }
}

/// Analyzes a compiled workload: the four compute streams (A, B, C, OUT),
/// the channel-graph deadlock checks, and the pre-pass accounting.
#[must_use]
pub fn analyze_program(program: &CompiledWorkload, mem: &MemConfig) -> Analysis {
    let streams = [
        StreamInput {
            design: &program.a.design,
            runtime: &program.a.runtime,
        },
        StreamInput {
            design: &program.b.design,
            runtime: &program.b.runtime,
        },
        StreamInput {
            design: &program.c.design,
            runtime: &program.c.runtime,
        },
        StreamInput {
            design: &program.out.design,
            runtime: &program.out.runtime,
        },
    ];
    let mut analysis = analyze_streams(&streams, mem, program.prepasses.len());

    // Channel-graph deadlock checks: FIFO capacities from the designs,
    // token supply from the runtime nests, demand from the PE's schedule
    // (A/B once per compute step, C/OUT once per output tile).
    let tiles = program.total_output_tiles;
    let steps = program.total_output_tiles * program.k_steps;
    let graph = system_graph(
        &[
            stream_tuple(&program.a, true),
            stream_tuple(&program.b, true),
            stream_tuple(&program.c, true),
            stream_tuple(&program.out, false),
        ],
        &[
            ("A".to_owned(), steps),
            ("B".to_owned(), steps),
            ("C".to_owned(), tiles),
            ("OUT".to_owned(), tiles),
        ],
    );
    analysis.report.extend(graph.analyze());
    analysis
}

fn stream_tuple(plan: &dm_compiler::StreamPlan, is_read: bool) -> (&str, bool, u64, u64, u64) {
    (
        plan.design.name(),
        is_read,
        plan.design.addr_buffer_depth() as u64,
        plan.design.data_buffer_depth() as u64,
        plan.runtime
            .checked_total_temporal_steps()
            .unwrap_or(u64::MAX),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_compiler::{compile, BufferDepths, FeatureSet};
    use dm_workloads::{ConvSpec, GemmSpec, WorkloadData};

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 4096).unwrap()
    }

    #[test]
    fn full_feature_gemm_is_proven_conflict_free() {
        let mem = mem();
        let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 3);
        let program = compile(
            &data,
            &FeatureSet::full(),
            &mem,
            true,
            BufferDepths::default(),
        )
        .unwrap();
        let analysis = analyze_program(&program, &mem);
        assert!(analysis.conflict_free, "{:?}", analysis.report);
        assert_eq!(analysis.guaranteed_min_conflicts, 0);
        assert!(!analysis.report.has_errors());
        assert!(analysis.report.passes(true), "{:?}", analysis.report);
    }

    #[test]
    fn shared_fima_placement_is_not_proven_free() {
        let mem = mem();
        let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 3);
        // Ablation step 5: everything but addressing-mode switching — all
        // four operands share one FIMA space.
        let program = compile(
            &data,
            &FeatureSet::ablation_step(5),
            &mem,
            true,
            BufferDepths::default(),
        )
        .unwrap();
        let analysis = analyze_program(&program, &mem);
        assert!(!analysis.conflict_free);
        assert!(analysis.report.has_code(LintCode::BankConflict));
        assert!(!analysis.report.has_errors(), "{:?}", analysis.report);
    }

    #[test]
    fn strided_conv_conflicts_are_unavoidable_info_not_warning() {
        let mem = mem();
        let data = WorkloadData::generate(ConvSpec::new(18, 18, 8, 8, 3, 3, 2).into(), 3);
        let program = compile(
            &data,
            &FeatureSet::full(),
            &mem,
            true,
            BufferDepths::default(),
        )
        .unwrap();
        let analysis = analyze_program(&program, &mem);
        if !analysis.conflict_free {
            // Strided convolutions collide unavoidably: the committed
            // configs must still pass --deny-warnings.
            assert!(analysis.report.passes(true), "{:?}", analysis.report);
            assert!(analysis.guaranteed_min_conflicts > 0);
        }
    }

    #[test]
    fn supply_demand_mismatch_is_deadlock() {
        let mem = mem();
        let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 3);
        let mut program = compile(
            &data,
            &FeatureSet::full(),
            &mem,
            true,
            BufferDepths::default(),
        )
        .unwrap();
        // Starve the A port: halve its outermost bound.
        let last = program.a.runtime.temporal_bounds.len() - 1;
        program.a.runtime.temporal_bounds[last] /= 2;
        let analysis = analyze_program(&program, &mem);
        assert!(analysis.report.has_code(LintCode::Deadlock));
        assert!(analysis.report.has_errors());
    }
}
