//! Known-bad configurations for exercising the analyzer.
//!
//! Each fixture is a deliberately broken system that the linter must
//! reject with a specific code; they double as `dm-lint --demo` subjects
//! and as regression anchors for the differential tests.

use datamaestro::{DesignConfig, RuntimeConfig, StreamerMode};
use dm_mem::{AddressingMode, MemConfig};

use crate::graph::ChannelGraph;

/// A stream whose access pattern walks past the end of the scratchpad —
/// must be rejected with `DM-OOB`.
#[must_use]
pub fn oob_pattern() -> (DesignConfig, RuntimeConfig, MemConfig) {
    let mem = MemConfig::new(32, 8, 64).expect("geometry"); // 16 KiB
    let design = DesignConfig::builder("oob", StreamerMode::Read)
        .spatial_bounds([8])
        .build()
        .expect("design");
    let runtime = RuntimeConfig::builder()
        .base(8192)
        // 64 steps of 256 bytes starting half-way: tops out at 24 KiB.
        .temporal([64], [256])
        .spatial_strides([8])
        .addressing_mode(AddressingMode::FullyInterleaved)
        .build();
    (design, runtime, mem)
}

/// A channel graph whose data FIFO has zero capacity — must be rejected
/// with `DM-DEADLOCK`. (The `DesignConfig` builder refuses zero depths, so
/// this models a hand-built topology going through the graph directly.)
#[must_use]
pub fn zero_capacity_fifo() -> ChannelGraph {
    let mut g = ChannelGraph::new();
    let mem = g.node("mem");
    let pe = g.node("pe");
    let a = g.node("A");
    g.edge(mem, a, Some(8), "A.addr_queue");
    g.edge(a, pe, Some(0), "A.data_fifo");
    g
}

/// A GeMM operand placed under NIMA with an 8-word burst: all channels
/// land in bank 0 every cycle — must be flagged `DM-BANK-CONFLICT` with a
/// `DM-MODE-MISMATCH` advisory pointing at FIMA.
#[must_use]
pub fn nima_gemm_clash() -> (DesignConfig, RuntimeConfig, MemConfig) {
    let mem = MemConfig::new(32, 8, 1024).expect("geometry");
    let design = DesignConfig::builder("a", StreamerMode::Read)
        .spatial_bounds([8])
        .temporal_dims(3)
        .build()
        .expect("design");
    let runtime = RuntimeConfig::builder()
        .temporal([8, 8, 8], [64, 512, 4096])
        .spatial_strides([8])
        .addressing_mode(AddressingMode::NonInterleaved)
        .build();
    (design, runtime, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{LintCode, Severity};
    use crate::system::{analyze_streams, StreamInput};

    #[test]
    fn oob_fixture_is_rejected_with_dm_oob() {
        let (design, runtime, mem) = oob_pattern();
        let analysis = analyze_streams(
            &[StreamInput {
                design: &design,
                runtime: &runtime,
            }],
            &mem,
            0,
        );
        assert!(
            analysis.report.has_code(LintCode::Oob),
            "{:?}",
            analysis.report
        );
        assert!(analysis.report.has_errors());
        assert!(!analysis.conflict_free);
    }

    #[test]
    fn zero_capacity_fixture_is_rejected_with_dm_deadlock() {
        let diags = zero_capacity_fifo().analyze();
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::Deadlock && d.severity == Severity::Error));
    }

    #[test]
    fn nima_clash_fixture_warns_conflict_and_mode_mismatch() {
        let (design, runtime, mem) = nima_gemm_clash();
        let analysis = analyze_streams(
            &[StreamInput {
                design: &design,
                runtime: &runtime,
            }],
            &mem,
            0,
        );
        assert!(analysis.report.has_code(LintCode::BankConflict));
        assert!(analysis.report.has_code(LintCode::ModeMismatch));
        assert!(!analysis.conflict_free);
        assert!(analysis.guaranteed_min_conflicts >= 7, "8 channels, 1 bank");
        assert!(!analysis.report.passes(true), "--deny-warnings must fail");
        assert!(!analysis.report.has_errors(), "warnings, not errors");
    }
}
