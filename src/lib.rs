//! # DataMaestro reproduction — umbrella crate
//!
//! A Rust reproduction of *DataMaestro: A Versatile and Efficient Data
//! Streaming Engine Bringing Decoupled Memory Access To Dataflow
//! Accelerators* (DAC 2025), built as a cycle-level simulator of the
//! paper's full evaluation system.
//!
//! This crate simply re-exports the workspace members so examples and
//! downstream users can depend on one name:
//!
//! * [`sim`] — simulation substrate (cycles, FIFOs, arbiters, statistics);
//! * [`mem`] — multi-banked scratchpad, crossbar and address remapper;
//! * [`streamer`] — the DataMaestro core: AGUs, MICs, read/write streamers
//!   and datapath extensions;
//! * [`accel`] — the GeMM and quantization accelerator datapaths;
//! * [`workloads`] — workload specs, layouts, the 260-workload suite and
//!   the four Table III networks;
//! * [`compiler`] — workload lowering (configs, placement, pre-passes);
//! * [`analyze`] — static configuration analysis (`dm-lint`): bank-conflict
//!   proofs, footprint/hazard checks, deadlock detection, mode advice;
//! * [`system`] — the assembled evaluation system and its cycle loop;
//! * [`baselines`] — analytic models of the SotA comparison points;
//! * [`cost`] — area, power and FPGA-resource models.
//!
//! # Examples
//!
//! ```
//! use datamaestro_repro::system::{run_workload, SystemConfig};
//! use datamaestro_repro::workloads::{GemmSpec, WorkloadData};
//!
//! let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 0);
//! let report = run_workload(&SystemConfig::default(), &data)?;
//! assert!(report.utilization() > 0.9);
//! # Ok::<(), datamaestro_repro::system::SystemError>(())
//! ```

pub use datamaestro as streamer;
pub use dm_accel as accel;
pub use dm_analyze as analyze;
pub use dm_baselines as baselines;
pub use dm_compiler as compiler;
pub use dm_cost as cost;
pub use dm_mem as mem;
pub use dm_sim as sim;
pub use dm_system as system;
pub use dm_workloads as workloads;
